//! Transfer/compute overlap ablation for the stream scheduler:
//! double-buffered execution (two streams per device) vs synchronous
//! execution (one stream) of the *same* chunked schedule.
//!
//! Both paths enqueue identical upload → kernel → download triples per
//! 256-tensor chunk and execute identical arithmetic — the results are
//! bitwise equal by construction (see `backend/tests/pipeline_parity.rs`).
//! The only difference is stream count: with one stream every op
//! serializes; with two, chunk *k+1*'s upload runs on the copy engine
//! while chunk *k*'s kernel occupies the SMs, exactly the C2050's
//! one-DMA-engine/one-SM-array concurrency. The modeled makespan gap is
//! therefore the pure overlap win, with per-chunk launch overhead charged
//! identically on both sides.
//!
//! The double-buffered 10k-tensor run also exports its event timeline as
//! a chrome://tracing file (`pipeline_trace.json`, load via
//! `chrome://tracing` or <https://ui.perfetto.dev>) so the overlap is
//! visible, not just summed.
//!
//! Run with: `cargo run --release -p bench --bin pipeline_overlap`

use backend::{KernelStrategy, PipelinedBackend, SolveBackend};
use bench::{bench_metadata, write_bench_json};
use gpusim::{DeviceSpec, TransferModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use sshopm::{starts, IterationPolicy, Shift, SsHopm};
use symtensor::TensorBatch;
use telemetry::Telemetry;

const M: usize = 4;
const N: usize = 3;
const STARTS: usize = 4;
const ITERS: usize = 3;
const CHUNK: usize = 256;

struct Run {
    /// Modeled wall-clock of the whole batch (timeline makespan).
    makespan_s: f64,
    /// Sum of every op's duration — what full serialization would cost.
    serial_s: f64,
    /// Seconds the copy engine ran hidden behind the compute engine.
    overlap_s: f64,
    ops: usize,
    trace_json: String,
}

fn run(batch: &TensorBatch<f32>, start_vecs: &[Vec<f32>], streams: usize) -> Run {
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(ITERS));
    let backend = PipelinedBackend::homogeneous(
        DeviceSpec::tesla_c2050(),
        1,
        TransferModel::pcie2(),
        KernelStrategy::General,
    )
    .expect("one device is valid")
    .with_streams(streams)
    .expect("streams")
    .with_chunk_tensors(CHUNK)
    .expect("chunk");
    let telemetry = Telemetry::enabled();
    let report = backend
        .solve_batch(batch, start_vecs, &solver, &telemetry)
        .expect("bench workload is well-formed");
    let timeline = report
        .timeline
        .expect("pipelined backend reports a timeline");
    Run {
        makespan_s: timeline.makespan(),
        serial_s: timeline.serial_seconds(),
        overlap_s: timeline.overlap_seconds(),
        ops: timeline.ops.len(),
        trace_json: telemetry.chrome_trace_json(),
    }
}

fn run_value(r: &Run, t: usize) -> Value {
    Value::object(vec![
        ("makespan_ms", Value::Float(r.makespan_s * 1e3)),
        ("serial_ms", Value::Float(r.serial_s * 1e3)),
        ("overlap_saved_ms", Value::Float(r.overlap_s * 1e3)),
        ("ops", Value::UInt(r.ops as u64)),
        (
            "tensors_per_sec_modeled",
            Value::Float(t as f64 / r.makespan_s),
        ),
    ])
}

fn main() {
    println!(
        "Stream overlap ablation: double-buffered (2 streams) vs synchronous (1 stream)\n\
         (m={M}, n={N}, {STARTS} starts, {ITERS} fixed iterations, f32, \
         Tesla C2050, {CHUNK}-tensor chunks, PCIe 2.0)\n"
    );
    println!(
        "{:>9} {:>8} {:>11} {:>11} {:>9} {:>12}",
        "tensors", "chunks", "sync (ms)", "piped (ms)", "speedup", "saved (ms)"
    );

    let mut sizes = Vec::new();
    let mut trace_10k: Option<String> = None;
    for &t in &[1_000usize, 10_000, 100_000] {
        let mut rng = StdRng::seed_from_u64(2026);
        let batch = TensorBatch::<f32>::random(M, N, t, &mut rng).expect("paper shape is valid");
        let start_vecs = starts::random_uniform_starts::<f32, _>(N, STARTS, &mut rng);

        // The model is deterministic, so one run per configuration is the
        // measurement — no best-of-N needed.
        let sync = run(&batch, &start_vecs, 1);
        let piped = run(&batch, &start_vecs, 2);
        if t == 10_000 {
            trace_10k = Some(piped.trace_json.clone());
        }

        let speedup = sync.makespan_s / piped.makespan_s;
        println!(
            "{:>9} {:>8} {:>11.3} {:>11.3} {:>8.3}x {:>12.3}",
            t,
            t.div_ceil(CHUNK),
            sync.makespan_s * 1e3,
            piped.makespan_s * 1e3,
            speedup,
            piped.overlap_s * 1e3,
        );
        sizes.push(Value::object(vec![
            ("tensors", Value::UInt(t as u64)),
            ("chunks", Value::UInt(t.div_ceil(CHUNK) as u64)),
            ("synchronous", run_value(&sync, t)),
            ("double_buffered", run_value(&piped, t)),
            ("speedup", Value::Float(speedup)),
        ]));
    }

    write_bench_json(
        "pipeline",
        &Value::object(vec![
            ("meta", bench_metadata("pipeline_overlap")),
            (
                "config",
                Value::object(vec![
                    ("m", Value::UInt(M as u64)),
                    ("n", Value::UInt(N as u64)),
                    ("starts", Value::UInt(STARTS as u64)),
                    ("iters", Value::UInt(ITERS as u64)),
                    ("chunk_tensors", Value::UInt(CHUNK as u64)),
                    ("device", Value::Str("tesla-c2050".into())),
                    ("link", Value::Str("pcie2".into())),
                    ("kernel", Value::Str("general".into())),
                ]),
            ),
            ("sizes", Value::Seq(sizes)),
        ]),
    );

    if let Some(trace) = trace_10k {
        let path = "pipeline_trace.json";
        if let Err(err) = std::fs::write(path, trace) {
            eprintln!("warning: could not write {path}: {err}");
        } else {
            println!("\nwrote {path} (10k-tensor double-buffered run; open in chrome://tracing)");
        }
    }

    println!(
        "\nreading: with one stream the copy and compute engines take turns,\n\
         so the makespan equals the serial sum; with two streams the next\n\
         chunk's upload hides behind the current kernel and only the first\n\
         upload and last download stay exposed. The saving converges to the\n\
         total transfer time as the batch grows."
    );
}
