//! Memory-layout ablation for the batch pipeline: one `Vec<SymTensor>`
//! per voxel (the pre-arena layout) vs a single contiguous
//! [`TensorBatch`] arena.
//!
//! Both paths start from the same raw packed coefficients (what a tensor
//! file or voxel fit produces) and run the identical unrolled kernels,
//! so the only difference is *where the bytes live*:
//!
//! * **vec layout** — one heap allocation per tensor (`SymTensor` each
//!   owns a 15-entry `Vec`), then a sequential per-tensor solve loop —
//!   exactly what `read_tensors` + the old per-tensor dispatch did;
//! * **packed layout** — one arena allocation for all tensors, then
//!   [`CpuSequential::solve_batch`] over borrowed views.
//!
//! The solver runs short fixed-iteration solves (one start, few
//! iterations) so the memory system — staging, allocator traffic,
//! traversal locality — is the bottleneck rather than the FLOPs. That is
//! the regime the arena refactor targets: Section V of the paper makes
//! the same point about staging 1024 tensors as one coalesced transfer.
//!
//! A counting global allocator reports how many heap allocations each
//! phase performs and the peak live footprint, making the "dominant
//! per-voxel allocation" visible next to the throughput numbers.
//!
//! Run with: `cargo run --release -p bench --bin batch_layout`

use backend::{CpuSequential, KernelStrategy, SolveBackend};
use bench::{bench_metadata, write_bench_json};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use sshopm::{IterationPolicy, Shift, SsHopm};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;
use symtensor::{SymTensor, TensorBatch};
use telemetry::Telemetry;

/// `System` with allocation counting: total calls plus peak live bytes.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        let live = LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        if new_size >= layout.size() {
            let grow = new_size - layout.size();
            let live = LIVE_BYTES.fetch_add(grow, Ordering::Relaxed) + grow;
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        } else {
            LIVE_BYTES.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocator counters sampled around a phase.
struct AllocSnapshot {
    calls: u64,
    peak: usize,
}

fn alloc_begin() -> u64 {
    // Reset the peak to the current live footprint so the phase measures
    // its own high-water mark, not the process's.
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
    ALLOC_CALLS.load(Ordering::Relaxed)
}

fn alloc_end(calls_before: u64) -> AllocSnapshot {
    AllocSnapshot {
        calls: ALLOC_CALLS.load(Ordering::Relaxed) - calls_before,
        peak: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

const M: usize = 4;
const N: usize = 3;
/// One start and a short fixed iteration budget: layout-bound, not
/// flop-bound (see module docs).
const ITERS: usize = 2;

struct Measured {
    seconds: f64,
    allocs: u64,
    peak_bytes: usize,
    total_iterations: u64,
}

impl Measured {
    fn tensors_per_sec(&self, t: usize) -> f64 {
        t as f64 / self.seconds
    }
}

/// The pre-arena pipeline: materialize one `SymTensor` per voxel from the
/// raw coefficients (what `read_tensors` produced), clone them into the
/// batch handed to the solver (the old drivers assembled per-shape solve
/// groups by cloning — `idxs.iter().map(|&i| tensors[i].clone())`), then
/// solve tensor-by-tensor. Same kernels, same arithmetic; scattered
/// storage and per-voxel allocator traffic.
fn run_vec_layout(raw: &[f32], t: usize, solver: &SsHopm, start: &[f32]) -> Measured {
    let plan = backend::KernelRegistry::global().plan::<f32>(M, N, KernelStrategy::Unrolled);
    let kernels = plan.kernels;
    let stride = raw.len() / t;
    let before = alloc_begin();
    let started = Instant::now();
    let tensors: Vec<SymTensor<f32>> = raw
        .chunks(stride)
        .map(|c| SymTensor::from_values(M, N, c.to_vec()).expect("paper shape is valid"))
        .collect();
    let group: Vec<SymTensor<f32>> = tensors.to_vec();
    let mut total_iterations = 0u64;
    let mut sink = 0.0f32;
    for a in &group {
        let pair = solver.solve_with(&*kernels, a, start);
        total_iterations += pair.iterations as u64;
        sink += pair.lambda;
    }
    let seconds = started.elapsed().as_secs_f64();
    let snap = alloc_end(before);
    std::hint::black_box(sink);
    Measured {
        seconds,
        allocs: snap.calls,
        peak_bytes: snap.peak,
        total_iterations,
    }
}

/// The arena pipeline: one contiguous buffer for all voxels, solved
/// through [`CpuSequential`] over borrowed views.
fn run_packed_layout(raw: &[f32], _t: usize, solver: &SsHopm, start: &[f32]) -> Measured {
    let backend = CpuSequential::new(KernelStrategy::Unrolled);
    let starts = vec![start.to_vec()];
    let before = alloc_begin();
    let started = Instant::now();
    let batch =
        TensorBatch::from_values(M, N, raw.to_vec()).expect("raw buffer is shape-consistent");
    let report = backend
        .solve_batch(&batch, &starts, solver, &Telemetry::disabled())
        .expect("layout bench workload is well-formed");
    let seconds = started.elapsed().as_secs_f64();
    let snap = alloc_end(before);
    std::hint::black_box(report.results.len());
    Measured {
        seconds,
        allocs: snap.calls,
        peak_bytes: snap.peak,
        total_iterations: report.total_iterations,
    }
}

fn layout_value(m: &Measured, t: usize) -> Value {
    Value::object(vec![
        ("seconds", Value::Float(m.seconds)),
        ("tensors_per_sec", Value::Float(m.tensors_per_sec(t))),
        ("allocations", Value::UInt(m.allocs)),
        ("peak_live_bytes", Value::UInt(m.peak_bytes as u64)),
        ("total_iterations", Value::UInt(m.total_iterations)),
    ])
}

fn main() {
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(ITERS));
    let start = vec![0.48f32, -0.62, 0.62];

    println!(
        "Batch memory-layout ablation: Vec<SymTensor> vs TensorBatch arena\n\
         (m={M}, n={N}, 1 start, {ITERS} fixed iterations, unrolled kernels, f32)\n"
    );
    println!(
        "{:>9} {:>14} {:>14} {:>9} {:>13} {:>13}",
        "tensors", "vec (ms)", "packed (ms)", "speedup", "vec allocs", "packed allocs"
    );

    let mut sizes = Vec::new();
    for &t in &[10_000usize, 100_000] {
        let mut rng = StdRng::seed_from_u64(2026);
        let master = TensorBatch::<f32>::random(M, N, t, &mut rng).expect("paper shape is valid");
        let raw = master.values().to_vec();
        drop(master);

        // Warm up both paths once (page in the raw buffer, JIT the
        // allocator arenas), then measure; best-of-3 to shed scheduler
        // noise.
        let _ = run_vec_layout(&raw, t, &solver, &start);
        let _ = run_packed_layout(&raw, t, &solver, &start);
        let mut vec_best: Option<Measured> = None;
        let mut packed_best: Option<Measured> = None;
        for _ in 0..3 {
            let v = run_vec_layout(&raw, t, &solver, &start);
            if vec_best.as_ref().is_none_or(|b| v.seconds < b.seconds) {
                vec_best = Some(v);
            }
            let p = run_packed_layout(&raw, t, &solver, &start);
            if packed_best.as_ref().is_none_or(|b| p.seconds < b.seconds) {
                packed_best = Some(p);
            }
        }
        let vec_m = vec_best.expect("three trials ran");
        let packed_m = packed_best.expect("three trials ran");
        assert_eq!(
            vec_m.total_iterations, packed_m.total_iterations,
            "both layouts must do identical arithmetic"
        );
        let speedup = vec_m.seconds / packed_m.seconds;
        println!(
            "{:>9} {:>14.2} {:>14.2} {:>8.2}x {:>13} {:>13}",
            t,
            vec_m.seconds * 1e3,
            packed_m.seconds * 1e3,
            speedup,
            vec_m.allocs,
            packed_m.allocs
        );
        sizes.push(Value::object(vec![
            ("tensors", Value::UInt(t as u64)),
            ("vec_layout", layout_value(&vec_m, t)),
            ("packed_layout", layout_value(&packed_m, t)),
            ("packed_speedup", Value::Float(speedup)),
        ]));
    }

    write_bench_json(
        "batch_layout",
        &Value::object(vec![
            ("meta", bench_metadata("batch_layout")),
            (
                "config",
                Value::object(vec![
                    ("m", Value::UInt(M as u64)),
                    ("n", Value::UInt(N as u64)),
                    ("starts", Value::UInt(1)),
                    ("iters", Value::UInt(ITERS as u64)),
                    ("kernel", Value::Str("unrolled".into())),
                    ("backend", Value::Str("cpu (sequential)".into())),
                ]),
            ),
            ("sizes", Value::Seq(sizes)),
        ]),
    );

    println!(
        "\nreading: the packed arena removes the per-voxel allocation (one\n\
         arena malloc vs one per tensor) and streams the solve through\n\
         contiguous memory; the vec layout pays allocator traffic and\n\
         pointer-chased loads per voxel."
    );
}
