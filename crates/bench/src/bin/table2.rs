//! Reproduce **Table II** of the paper: storage and computational costs of
//! the general (dense) versus symmetric (packed) tensor representations,
//! as closed-form formulas and as concrete numbers over an (m, n) sweep —
//! plus a wall-clock verification that the flop advantage is real.

use bench::{bench_metadata, write_bench_json};
use serde::Value;
use std::time::Instant;
use symtensor::kernels::{axm, axm1};
use symtensor::{flops, DenseTensor, SymTensor};

fn main() {
    let mut json_rows = Vec::new();
    println!("Table II: general vs symmetric storage and computation\n");
    println!("                     general           symmetric");
    println!("storage              n^m               C(m+n-1, m) = n^m/m! + O(n^(m-1))");
    println!("computation A.x^m    2n^m + O(n^(m-1)) O(n^m/(m-1)!)");
    println!("computation A.x^m-1  2n^m + O(n^(m-1)) O(m n^m/(m-1)!)\n");

    println!(
        "{:>3} {:>3} | {:>12} {:>12} {:>7} | {:>12} {:>12} {:>7} | {:>12} {:>12} {:>7}",
        "m",
        "n",
        "dense stor",
        "sym stor",
        "ratio",
        "dense Axm",
        "sym Axm",
        "ratio",
        "dense Axm1",
        "sym Axm1",
        "ratio"
    );
    for (m, n) in [
        (3usize, 3usize),
        (4, 3),
        (4, 5),
        (4, 10),
        (5, 5),
        (6, 3),
        (6, 6),
        (8, 4),
    ] {
        let ds = flops::dense_storage(m, n);
        let ss = flops::sym_storage(m, n);
        let da = flops::axm_dense_flops(m, n);
        let sa = flops::axm_sym_flops(m, n);
        let d1 = flops::axm1_dense_flops(m, n);
        let s1 = flops::axm1_sym_flops(m, n);
        println!(
            "{:>3} {:>3} | {:>12} {:>12} {:>7.1} | {:>12} {:>12} {:>7.1} | {:>12} {:>12} {:>7.1}",
            m,
            n,
            ds,
            ss,
            ds as f64 / ss as f64,
            da,
            sa,
            da as f64 / sa as f64,
            d1,
            s1,
            d1 as f64 / s1 as f64,
        );
        json_rows.push(Value::object(vec![
            ("m", Value::UInt(m as u64)),
            ("n", Value::UInt(n as u64)),
            ("dense_storage", Value::UInt(ds)),
            ("sym_storage", Value::UInt(ss)),
            ("dense_axm_flops", Value::UInt(da)),
            ("sym_axm_flops", Value::UInt(sa)),
            ("dense_axm1_flops", Value::UInt(d1)),
            ("sym_axm1_flops", Value::UInt(s1)),
        ]));
    }

    // Wall-clock spot check at (6, 6): the packed kernel beats the dense
    // baseline by a factor tracking the flop ratio.
    println!("\nwall-clock spot check at (m, n) = (6, 6), f64, 200 repetitions:");
    let (m, n) = (6usize, 6usize);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let a = SymTensor::<f64>::random(m, n, &mut rng);
    let dense = DenseTensor::from_sym(&a);
    let x: Vec<f64> = (0..n).map(|i| 0.17 + 0.09 * i as f64).collect();
    let mut y = vec![0.0; n];

    let reps = 200;
    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..reps {
        acc += dense.axm_dense(&x).unwrap();
        let v = dense.axm1_dense(&x).unwrap();
        acc += v[0];
    }
    let dense_t = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for _ in 0..reps {
        acc += axm(&a, &x).unwrap();
        axm1(&a, &x, &mut y).unwrap();
        acc += y[0];
    }
    let sym_t = t0.elapsed().as_secs_f64();

    // The on-the-fly kernel pays integer index bookkeeping the flop counts
    // do not show; the precomputed-table variant (Section III-B5) removes
    // it and gets much closer to the flop-count ratio.
    let tables = symtensor::PrecomputedTables::new(m, n);
    let t0 = Instant::now();
    for _ in 0..reps {
        acc += tables.axm(&a, &x).unwrap();
        tables.axm1(&a, &x, &mut y).unwrap();
        acc += y[0];
    }
    let pre_t = t0.elapsed().as_secs_f64();
    std::hint::black_box(acc);

    let flop_ratio = (flops::axm_dense_flops(m, n) + flops::axm1_dense_flops(m, n)) as f64
        / (flops::axm_sym_flops(m, n) + flops::axm1_sym_flops(m, n)) as f64;
    println!(
        "  dense {:.3} ms | sym on-the-fly {:.3} ms ({:.1}x) | sym precomputed {:.3} ms ({:.1}x) | flop-count ratio {:.1}x",
        dense_t * 1e3,
        sym_t * 1e3,
        dense_t / sym_t,
        pre_t * 1e3,
        dense_t / pre_t,
        flop_ratio
    );

    write_bench_json(
        "table2",
        &Value::object(vec![
            ("meta", bench_metadata("table2")),
            ("rows", Value::Seq(json_rows)),
            (
                "wall_clock_spot_check",
                Value::object(vec![
                    ("m", Value::UInt(m as u64)),
                    ("n", Value::UInt(n as u64)),
                    ("repetitions", Value::UInt(reps as u64)),
                    ("dense_seconds", Value::Float(dense_t)),
                    ("sym_seconds", Value::Float(sym_t)),
                    ("precomputed_seconds", Value::Float(pre_t)),
                    ("flop_count_ratio", Value::Float(flop_ratio)),
                ]),
            ),
        ]),
    );
}
