//! The shift trade-off study: Section V-A of the paper notes that
//! "choosing an appropriate shift for real data will balance a tradeoff
//! between guarantees of convergence and time-to-completion". This binary
//! quantifies that trade on the phantom workload: for each shift policy,
//! the fraction of solves that converge and the iteration count
//! distribution.
//!
//! Run with: `cargo run --release -p bench --bin shifts`

use backend::{CpuParallel, KernelStrategy, SolveBackend};
use bench::{bench_metadata, write_bench_json, Workload};
use serde::Value;
use sshopm::{IterationPolicy, Shift, SsHopm};
use telemetry::Telemetry;

fn main() {
    let workload = Workload::paper_workload(2026);
    // A manageable subset: 128 tensors x 16 starts.
    let tensors = workload.tensors.slice(0..128).to_owned();
    let starts = &workload.starts[..16];

    println!(
        "Shift trade-off on {} tensors x {} starts (m=4, n=3, f32, tol 1e-6, cap 1000):\n",
        tensors.len(),
        starts.len()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "shift policy", "converged", "mean iter", "p95 iter", "max iter"
    );

    let policies: Vec<(String, Shift)> = vec![
        ("alpha = 0 (paper)".into(), Shift::Fixed(0.0)),
        ("alpha = 0.5".into(), Shift::Fixed(0.5)),
        ("alpha = 2".into(), Shift::Fixed(2.0)),
        ("alpha = 8".into(), Shift::Fixed(8.0)),
        ("convex bound".into(), Shift::Convex),
        ("adaptive".into(), Shift::Adaptive),
    ];

    let mut json_rows = Vec::new();
    // The adaptive/convex shifts are CPU-only, so the whole sweep runs on
    // the parallel CPU backend (all cores, general kernels).
    let backend = CpuParallel::new(0, KernelStrategy::General);
    for (label, shift) in policies {
        let solver = SsHopm::new(shift).with_policy(IterationPolicy::Converge {
            tol: 1e-6,
            max_iters: 1000,
        });
        let report = backend
            .solve_batch(&tensors, starts, &solver, &Telemetry::disabled())
            .expect("shift sweep workload is well-formed");
        let total = report.num_tensors() * report.num_starts();
        let converged = report.num_converged() as usize;
        let mut iters: Vec<usize> = report
            .iter_flat()
            .filter(|(_, _, p)| p.converged)
            .map(|(_, _, p)| p.iterations)
            .collect();
        iters.sort_unstable();
        let mean = iters.iter().sum::<usize>() as f64 / iters.len().max(1) as f64;
        let p95 = iters.get(iters.len() * 95 / 100).copied().unwrap_or(0);
        let max = iters.last().copied().unwrap_or(0);
        println!(
            "{:<22} {:>9.1}% {:>10.1} {:>10} {:>10}",
            label,
            100.0 * converged as f64 / total as f64,
            mean,
            p95,
            max
        );
        json_rows.push(Value::object(vec![
            ("policy", Value::Str(label)),
            ("solves", Value::UInt(total as u64)),
            ("converged", Value::UInt(converged as u64)),
            (
                "converged_fraction",
                Value::Float(converged as f64 / total as f64),
            ),
            ("mean_iterations", Value::Float(mean)),
            ("p95_iterations", Value::UInt(p95 as u64)),
            ("max_iterations", Value::UInt(max as u64)),
        ]));
    }
    write_bench_json(
        "shifts",
        &Value::object(vec![
            ("meta", bench_metadata("shifts")),
            ("policies", Value::Seq(json_rows)),
        ]),
    );

    println!(
        "\nreading: small fixed shifts converge fastest when they converge at all;\n\
         the guaranteed convex bound pays iterations for its guarantee; the\n\
         adaptive shift gets (most of) the guarantee at near-minimal cost."
    );
}
