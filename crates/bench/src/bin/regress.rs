//! Performance-regression gate.
//!
//! ```text
//! regress [--quick] [--seed S] [--out PATH] [--baseline PATH]
//!         [--tolerance X] [--update-baselines] [--validate-baselines]
//! ```
//!
//! Runs the fixed scenario matrix (see `bench::regress`), writes the
//! schema-versioned summary to `BENCH_regress.json`, and compares it
//! against the committed baseline (default
//! `benchmarks/baselines/<suite>.json`). Exits nonzero on regression.
//! Alongside the matrix it runs the solver comparison (`sshopm`, `geap`,
//! `qrst` on one shared workload; iteration counts are the deterministic
//! metric) and writes it to `BENCH_solvers.json`.
//!
//! * `--quick` — the small CI perf-smoke suite (default: full).
//! * `--tolerance X` — scale both tolerance bands (1.0 = committed).
//! * `--update-baselines` — refresh the baseline file from this run.
//! * `--validate-baselines` — schema-check every committed baseline
//!   under `benchmarks/baselines/` without running anything.

use bench::regress::{baseline_from_run, compare, run_matrix, run_solvers, validate_baseline};
use serde::Value;
use std::process::ExitCode;

struct Options {
    quick: bool,
    seed: u64,
    out: String,
    baseline: Option<String>,
    tolerance: f64,
    update: bool,
    validate_only: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        quick: false,
        seed: 42,
        out: "BENCH_regress.json".to_owned(),
        baseline: None,
        tolerance: 1.0,
        update: false,
        validate_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--update-baselines" => opts.update = true,
            "--validate-baselines" => opts.validate_only = true,
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("invalid --seed: {e}"))?
            }
            "--out" => opts.out = value("--out")?,
            "--baseline" => opts.baseline = Some(value("--baseline")?),
            "--tolerance" => {
                opts.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("invalid --tolerance: {e}"))?
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

/// Schema-check every `benchmarks/baselines/*.json`; true when clean.
fn validate_all_baselines() -> bool {
    let dir = std::path::Path::new("benchmarks/baselines");
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("cannot read {}: {e}", dir.display());
            return false;
        }
    };
    let mut checked = 0usize;
    let mut clean = true;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        checked += 1;
        let doc = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| Value::parse_json(&text).map_err(|e| e.to_string()));
        match doc {
            Ok(doc) => {
                let problems = validate_baseline(&doc);
                if problems.is_empty() {
                    println!("{}: OK", path.display());
                } else {
                    clean = false;
                    for p in &problems {
                        eprintln!("{}: {p}", path.display());
                    }
                }
            }
            Err(e) => {
                clean = false;
                eprintln!("{}: {e}", path.display());
            }
        }
    }
    if checked == 0 {
        eprintln!("no baseline files under {}", dir.display());
        return false;
    }
    clean
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if opts.validate_only {
        return if validate_all_baselines() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let suite = if opts.quick { "quick" } else { "full" };
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| format!("benchmarks/baselines/{suite}.json"));
    println!("running {suite} regression matrix (seed {})", opts.seed);
    let run = run_matrix(opts.quick, opts.seed);
    if let Err(e) = std::fs::write(&opts.out, run.to_json_pretty() + "\n") {
        eprintln!("cannot write {}: {e}", opts.out);
        return ExitCode::from(2);
    }
    println!("wrote {}", opts.out);

    let solvers = run_solvers(opts.quick, opts.seed);
    bench::write_bench_json("solvers", &solvers);

    if opts.update {
        let baseline = baseline_from_run(&run);
        if let Some(parent) = std::path::Path::new(&baseline_path).parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create {}: {e}", parent.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&baseline_path, baseline.to_json_pretty() + "\n") {
            eprintln!("cannot write {baseline_path}: {e}");
            return ExitCode::from(2);
        }
        println!("updated baseline {baseline_path}");
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Value::parse_json(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("cannot parse {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!(
                "cannot read baseline {baseline_path}: {e}\n\
                 (run with --update-baselines to create it)"
            );
            return ExitCode::from(2);
        }
    };
    let problems = validate_baseline(&baseline);
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("{baseline_path}: {p}");
        }
        return ExitCode::from(2);
    }
    let regressions = compare(&run, &baseline, opts.tolerance);
    if regressions.is_empty() {
        println!("regress OK: {suite} suite within tolerance of {baseline_path}");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{} regression(s) against {baseline_path}:",
            regressions.len()
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        ExitCode::FAILURE
    }
}
