//! Multi-tensor kernel throughput: lane-vectorized batched kernels vs the
//! per-tensor blocked kernels, on millions of `(4, 3)` tensors.
//!
//! This is the regime the lockstep refactor targets (Section VI of the
//! paper: millions of independent small tensors of one shape). Both paths
//! evaluate `A·xᵐ` and `A·xᵐ⁻¹` for every tensor of one packed
//! [`TensorBatch`] arena, [`REPS`] times over — modeling the SS-HOPM
//! iteration loop, where the one panel gather (the SoA transpose) is
//! amortized over every subsequent kernel call exactly as in
//! `sshopm::solve_batch_lockstep`:
//!
//! * **blocked** — the scalar per-tensor kernels, one arena view at a
//!   time (the fastest pre-lane per-tensor path);
//! * **batched** — [`LanePanel::gather`] per [`LANE_WIDTH`] tensors
//!   (inside the timed region), then the lockstep panel kernels.
//!
//! Correctness is pinned inside the bench itself: the batched path must
//! be *bitwise* identical to the scalar precomputed tables on a prefix of
//! the batch, and the two throughput paths must agree on an absolute-value
//! checksum (blocked reorders sums, so bitwise equality is not expected
//! there).
//!
//! Writes `BENCH_simd_kernels.json`; exits nonzero if the batched path is
//! not at least [`MIN_SPEEDUP`]× the blocked path on `axm1` throughput at
//! the 1M-tensor size.
//!
//! Run with: `cargo run --release -p bench --bin simd_kernels [-- --full]`

use backend::KernelStrategy;
use bench::{bench_metadata, write_bench_json};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use std::process::ExitCode;
use std::time::Instant;
use symtensor::{BatchedKernels, LanePanel, TensorBatch, TensorKernels, LANE_WIDTH};

const M: usize = 4;
const N: usize = 3;
const SEED: u64 = 2026;

/// Kernel calls per tensor per pass — the iteration loop the panel gather
/// is amortized over (a fixed-budget SS-HOPM solve makes ~20 such calls
/// per contraction per start; 8 keeps the bench short while staying in
/// the amortized regime).
const REPS: usize = 8;

/// Acceptance floor: batched `axm1` throughput over blocked at 1M tensors.
const MIN_SPEEDUP: f64 = 1.2;

/// Best-of-N trials per measurement to shed scheduler noise.
const TRIALS: usize = 3;

struct Measured {
    seconds: f64,
    /// Sum of |y| (or |A·xᵐ|) in `f64` — order-insensitive enough for a
    /// cross-path comparison, sensitive to any wrong value.
    checksum: f64,
}

impl Measured {
    /// Tensor-evaluations per second (each of the `REPS` passes evaluates
    /// every tensor once).
    fn throughput(&self, t: usize) -> f64 {
        (t * REPS) as f64 / self.seconds
    }
}

/// `A·xᵐ⁻¹` over the whole arena, one tensor at a time, `REPS` passes.
fn blocked_axm1(kernels: &dyn TensorKernels<f32>, batch: &TensorBatch<f32>, x: &[f32]) -> Measured {
    let mut y = vec![0.0f32; N];
    let mut checksum = 0.0f64;
    let started = Instant::now();
    for _ in 0..REPS {
        for a in batch.iter() {
            kernels.axm1(a, x, &mut y).expect("bench shapes match");
            for &v in &y {
                checksum += f64::from(v.abs());
            }
        }
    }
    let seconds = started.elapsed().as_secs_f64();
    Measured { seconds, checksum }
}

/// `A·xᵐ` over the whole arena, one tensor at a time, `REPS` passes.
fn blocked_axm(kernels: &dyn TensorKernels<f32>, batch: &TensorBatch<f32>, x: &[f32]) -> Measured {
    let mut checksum = 0.0f64;
    let started = Instant::now();
    for _ in 0..REPS {
        for a in batch.iter() {
            let v = kernels.axm(a, x).expect("bench shapes match");
            checksum += f64::from(v.abs());
        }
    }
    let seconds = started.elapsed().as_secs_f64();
    Measured { seconds, checksum }
}

/// Broadcast one vector into the component-major lane layout.
fn broadcast_lanes(x: &[f32]) -> Vec<f32> {
    let mut xs = vec![0.0f32; x.len() * LANE_WIDTH];
    for (i, &v) in x.iter().enumerate() {
        for w in 0..LANE_WIDTH {
            xs[i * LANE_WIDTH + w] = v;
        }
    }
    xs
}

/// Lockstep `A·xᵐ⁻¹`: gather each panel once (timed — it is part of the
/// real pipeline), then run `REPS` panel kernels against it.
fn batched_axm1(kernels: &BatchedKernels, batch: &TensorBatch<f32>, x: &[f32]) -> Measured {
    let xs = broadcast_lanes(x);
    let mut ys = vec![0.0f32; N * LANE_WIDTH];
    let mut checksum = 0.0f64;
    let started = Instant::now();
    let mut start = 0usize;
    while start < batch.len() {
        let width = LANE_WIDTH.min(batch.len() - start);
        let panel =
            LanePanel::gather(kernels, batch.view(), start, width).expect("bench shapes match");
        for _ in 0..REPS {
            panel
                .axm1(kernels, &xs, &mut ys)
                .expect("lane buffers sized");
            for i in 0..N {
                for w in 0..width {
                    checksum += f64::from(ys[i * LANE_WIDTH + w].abs());
                }
            }
        }
        start += width;
    }
    let seconds = started.elapsed().as_secs_f64();
    Measured { seconds, checksum }
}

/// Lockstep `A·xᵐ`, same structure as [`batched_axm1`].
fn batched_axm(kernels: &BatchedKernels, batch: &TensorBatch<f32>, x: &[f32]) -> Measured {
    let xs = broadcast_lanes(x);
    let mut out = [0.0f32; LANE_WIDTH];
    let mut checksum = 0.0f64;
    let started = Instant::now();
    let mut start = 0usize;
    while start < batch.len() {
        let width = LANE_WIDTH.min(batch.len() - start);
        let panel =
            LanePanel::gather(kernels, batch.view(), start, width).expect("bench shapes match");
        for _ in 0..REPS {
            panel
                .axm(kernels, &xs, &mut out)
                .expect("lane buffers sized");
            for &v in out.iter().take(width) {
                checksum += f64::from(v.abs());
            }
        }
        start += width;
    }
    let seconds = started.elapsed().as_secs_f64();
    Measured { seconds, checksum }
}

fn best_of<F: FnMut() -> Measured>(mut f: F) -> Measured {
    let mut best = f();
    for _ in 1..TRIALS {
        let m = f();
        if m.seconds < best.seconds {
            best = m;
        }
    }
    best
}

/// Bitwise parity of the lane kernels against the scalar precomputed
/// tables on the first `prefix` tensors — the same guarantee the lockstep
/// solver's parity suite rests on, re-checked on this bench's workload.
fn check_bitwise_prefix(
    kernels: &BatchedKernels,
    batch: &TensorBatch<f32>,
    x: &[f32],
    prefix: usize,
) {
    let xs = broadcast_lanes(x);
    let mut ys = vec![0.0f32; N * LANE_WIDTH];
    let mut out = [0.0f32; LANE_WIDTH];
    let mut want_y = vec![0.0f32; N];
    let mut start = 0usize;
    while start < prefix.min(batch.len()) {
        let width = LANE_WIDTH.min(batch.len() - start);
        let panel =
            LanePanel::gather(kernels, batch.view(), start, width).expect("bench shapes match");
        panel
            .axm1(kernels, &xs, &mut ys)
            .expect("lane buffers sized");
        panel
            .axm(kernels, &xs, &mut out)
            .expect("lane buffers sized");
        for w in 0..width {
            let a = batch.view().try_get(start + w).expect("index in range");
            kernels
                .tables()
                .axm1(a, x, &mut want_y)
                .expect("shapes match");
            for i in 0..N {
                assert_eq!(
                    ys[i * LANE_WIDTH + w].to_bits(),
                    want_y[i].to_bits(),
                    "axm1 lane parity broke at tensor {} component {i}",
                    start + w
                );
            }
            let want = kernels.tables().axm(a, x).expect("shapes match");
            assert_eq!(
                out[w].to_bits(),
                want.to_bits(),
                "axm lane parity broke at tensor {}",
                start + w
            );
        }
        start += width;
    }
}

fn measured_value(m: &Measured, t: usize) -> Value {
    Value::object(vec![
        ("seconds", Value::Float(m.seconds)),
        ("tensor_evals_per_sec", Value::Float(m.throughput(t))),
        ("checksum", Value::Float(m.checksum)),
    ])
}

fn main() -> ExitCode {
    let full = std::env::args().any(|a| a == "--full");
    let sizes: &[usize] = if full {
        &[1_000_000, 10_000_000]
    } else {
        &[1_000_000]
    };

    println!(
        "SIMD kernel throughput: lane-vectorized batched vs per-tensor blocked\n\
         (m={M}, n={N}, f32, {REPS} kernel calls per tensor per pass, best of {TRIALS})\n"
    );
    println!(
        "{:>10} {:>6} {:>16} {:>16} {:>9}",
        "tensors", "op", "blocked Mt/s", "batched Mt/s", "speedup"
    );

    let mut size_values = Vec::new();
    let mut accept = true;
    for &t in sizes {
        let mut rng = StdRng::seed_from_u64(SEED);
        let batch = TensorBatch::<f32>::random(M, N, t, &mut rng).expect("paper shape is valid");
        let x: Vec<f32> = (0..N).map(|_| rng.gen_range(-1.0f32..=1.0)).collect();
        let plan = backend::KernelRegistry::global().plan::<f32>(M, N, KernelStrategy::Blocked);
        let blocked = plan.kernels;
        assert_eq!(
            plan.effective,
            KernelStrategy::Blocked,
            "(4,3) is a blocked shape"
        );
        let batched = BatchedKernels::new(M, N);

        check_bitwise_prefix(&batched, &batch, &x, 4096);

        // Warm up on a prefix (page in the arena, settle the clocks).
        let warm = batch.slice(0..t.min(65_536)).to_owned();
        let _ = blocked_axm1(&*blocked, &warm, &x);
        let _ = batched_axm1(&batched, &warm, &x);

        let b1 = best_of(|| blocked_axm1(&*blocked, &batch, &x));
        let l1 = best_of(|| batched_axm1(&batched, &batch, &x));
        let b0 = best_of(|| blocked_axm(&*blocked, &batch, &x));
        let l0 = best_of(|| batched_axm(&batched, &batch, &x));

        for (name, a, b) in [("axm1", &b1, &l1), ("axm", &b0, &l0)] {
            let scale = 1.0 + a.checksum.abs();
            assert!(
                (a.checksum - b.checksum).abs() < 1e-4 * scale,
                "{name} checksums diverged at {t} tensors: {} vs {}",
                a.checksum,
                b.checksum
            );
        }

        let speedup_axm1 = b1.seconds / l1.seconds;
        let speedup_axm = b0.seconds / l0.seconds;
        println!(
            "{:>10} {:>6} {:>16.2} {:>16.2} {:>8.2}x",
            t,
            "axm1",
            b1.throughput(t) / 1e6,
            l1.throughput(t) / 1e6,
            speedup_axm1
        );
        println!(
            "{:>10} {:>6} {:>16.2} {:>16.2} {:>8.2}x",
            t,
            "axm",
            b0.throughput(t) / 1e6,
            l0.throughput(t) / 1e6,
            speedup_axm
        );

        if t == 1_000_000 && speedup_axm1 < MIN_SPEEDUP {
            accept = false;
        }
        size_values.push(Value::object(vec![
            ("tensors", Value::UInt(t as u64)),
            ("blocked_axm1", measured_value(&b1, t)),
            ("batched_axm1", measured_value(&l1, t)),
            ("blocked_axm", measured_value(&b0, t)),
            ("batched_axm", measured_value(&l0, t)),
            ("speedup_axm1", Value::Float(speedup_axm1)),
            ("speedup_axm", Value::Float(speedup_axm)),
        ]));
    }

    write_bench_json(
        "simd_kernels",
        &Value::object(vec![
            ("meta", bench_metadata("simd_kernels")),
            (
                "config",
                Value::object(vec![
                    ("m", Value::UInt(M as u64)),
                    ("n", Value::UInt(N as u64)),
                    ("seed", Value::UInt(SEED)),
                    ("reps", Value::UInt(REPS as u64)),
                    ("trials", Value::UInt(TRIALS as u64)),
                    ("lane_width", Value::UInt(LANE_WIDTH as u64)),
                    ("min_speedup_axm1_1m", Value::Float(MIN_SPEEDUP)),
                ]),
            ),
            ("sizes", Value::Seq(size_values)),
        ]),
    );

    if accept {
        println!("\nACCEPT: batched >= {MIN_SPEEDUP}x blocked on axm1 throughput at 1M tensors");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nFAIL: batched < {MIN_SPEEDUP}x blocked on axm1 throughput at 1M tensors");
        ExitCode::FAILURE
    }
}
