//! Strong-scaling sweep for the sharded cluster backend: one fixed
//! 1M-tensor workload run on 1, 2, 4 and 8 hosts (two Tesla C2050s
//! each, PCIe 2.0 inside the host, a QDR-InfiniBand-class NIC between
//! hosts), reporting modeled makespan, achieved NIC traffic and the
//! ratio against the Al Daas et al. communication lower bound.
//!
//! Two acceptance properties ride on this sweep (asserted at the end):
//! the makespan must decrease monotonically from 1 to 4 hosts (the NIC
//! cost must not swamp the compute win at small scale), and the achieved
//! NIC traffic must stay within 8x of the lower bound at every scale.
//!
//! Run with: `cargo run --release -p bench --bin cluster_scaling`

use backend::{ClusterBackend, KernelStrategy, SolveBackend};
use bench::{bench_metadata, write_bench_json};
use gpusim::DeviceSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use sshopm::{starts, IterationPolicy, Shift, SsHopm};
use symtensor::TensorBatch;
use telemetry::Telemetry;

const M: usize = 4;
const N: usize = 3;
const TENSORS: usize = 1_000_000;
const STARTS: usize = 4;
const ITERS: usize = 3;
const DEVICES_PER_HOST: usize = 2;
const STREAMS: usize = 2;
const HOST_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Run {
    hosts: usize,
    makespan_s: f64,
    gflops: f64,
    nic_bytes: u64,
    lower_bound_bytes: u64,
    ratio: f64,
}

fn run(batch: &TensorBatch<f32>, start_vecs: &[Vec<f32>], hosts: usize) -> Run {
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(ITERS));
    let backend = ClusterBackend::homogeneous(
        DeviceSpec::tesla_c2050(),
        hosts,
        DEVICES_PER_HOST,
        KernelStrategy::Unrolled,
    )
    .expect("host counts are nonzero")
    .with_streams(STREAMS)
    .expect("streams");
    let report = backend
        .solve_batch(batch, start_vecs, &solver, &Telemetry::disabled())
        .expect("bench workload is well-formed");
    Run {
        hosts,
        makespan_s: report.seconds,
        gflops: report.useful_flops as f64 / report.seconds / 1e9,
        nic_bytes: report.comm.nic_bytes,
        lower_bound_bytes: report.comm.lower_bound_bytes,
        ratio: report.comm.ratio,
    }
}

fn main() {
    println!(
        "Cluster strong scaling: {TENSORS} tensors (m={M}, n={N}), {STARTS} starts, \
         {ITERS} fixed iterations, f32\n\
         ({DEVICES_PER_HOST}x Tesla C2050 per host, {STREAMS} streams/device, PCIe 2.0 \
         intra-host, QDR InfiniBand inter-host)\n"
    );
    println!(
        "{:>6} {:>8} {:>13} {:>9} {:>14} {:>14} {:>7}",
        "hosts", "devices", "makespan (s)", "GFLOP/s", "NIC (MiB)", "bound (MiB)", "ratio"
    );

    let mut rng = StdRng::seed_from_u64(2026);
    let batch = TensorBatch::<f32>::random(M, N, TENSORS, &mut rng).expect("paper shape is valid");
    let start_vecs = starts::random_uniform_starts::<f32, _>(N, STARTS, &mut rng);

    // The model is deterministic: one run per host count is the
    // measurement.
    let runs: Vec<Run> = HOST_COUNTS
        .iter()
        .map(|&hosts| {
            let r = run(&batch, &start_vecs, hosts);
            println!(
                "{:>6} {:>8} {:>13.4} {:>9.2} {:>14.2} {:>14.2} {:>6.2}x",
                r.hosts,
                r.hosts * DEVICES_PER_HOST,
                r.makespan_s,
                r.gflops,
                r.nic_bytes as f64 / (1024.0 * 1024.0),
                r.lower_bound_bytes as f64 / (1024.0 * 1024.0),
                r.ratio,
            );
            r
        })
        .collect();

    write_bench_json(
        "cluster",
        &Value::object(vec![
            ("meta", bench_metadata("cluster_scaling")),
            (
                "config",
                Value::object(vec![
                    ("m", Value::UInt(M as u64)),
                    ("n", Value::UInt(N as u64)),
                    ("tensors", Value::UInt(TENSORS as u64)),
                    ("starts", Value::UInt(STARTS as u64)),
                    ("iters", Value::UInt(ITERS as u64)),
                    ("devices_per_host", Value::UInt(DEVICES_PER_HOST as u64)),
                    ("streams", Value::UInt(STREAMS as u64)),
                    ("device", Value::Str("tesla-c2050".into())),
                    ("intra_host_link", Value::Str("pcie2".into())),
                    ("inter_host_link", Value::Str("qdr-infiniband".into())),
                    ("kernel", Value::Str("unrolled".into())),
                ]),
            ),
            (
                "scales",
                Value::Seq(
                    runs.iter()
                        .map(|r| {
                            Value::object(vec![
                                ("hosts", Value::UInt(r.hosts as u64)),
                                ("devices", Value::UInt((r.hosts * DEVICES_PER_HOST) as u64)),
                                ("makespan_s", Value::Float(r.makespan_s)),
                                ("gflops", Value::Float(r.gflops)),
                                ("nic_bytes", Value::UInt(r.nic_bytes)),
                                ("comm_lower_bound_bytes", Value::UInt(r.lower_bound_bytes)),
                                ("comm_ratio", Value::Float(r.ratio)),
                                (
                                    "speedup_vs_1_host",
                                    Value::Float(runs[0].makespan_s / r.makespan_s),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    );

    // Acceptance gates for the sweep itself.
    for pair in runs[..3].windows(2) {
        assert!(
            pair[1].makespan_s < pair[0].makespan_s,
            "makespan must decrease monotonically 1 -> 4 hosts: {} hosts {:.4}s vs {} hosts {:.4}s",
            pair[0].hosts,
            pair[0].makespan_s,
            pair[1].hosts,
            pair[1].makespan_s,
        );
    }
    for r in &runs {
        if r.hosts > 1 {
            assert!(
                r.ratio < 8.0,
                "{} hosts: NIC traffic {:.2}x the lower bound exceeds the 8x budget",
                r.hosts,
                r.ratio
            );
        } else {
            assert_eq!(r.nic_bytes, 0, "a single host must not touch the NIC");
        }
    }

    println!(
        "\nreading: each added host splits the arena further, so compute\n\
         shrinks while every non-root shard pays one NIC round trip. The\n\
         achieved-traffic-to-lower-bound ratio stays bounded because the\n\
         sharder sends each byte at most once; the gap is start vectors\n\
         and result rows that the bound counts at its optimistic minimum."
    );
}
