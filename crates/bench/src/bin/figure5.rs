//! Reproduce **Figure 5** of the paper: GFLOP/s versus the number of
//! tensors (subsets of the 1024-tensor set) for the four unrolled
//! implementations — CPU with 1/4/8 threads and the (simulated) GPU.
//! The paper plots this with a log-scale y axis; we print the series and a
//! crude log-scale ASCII chart.
//!
//! Expected shape (paper): CPU curves are flat in T; the GPU curve ramps
//! while the device fills (T below ~50 blocks underutilizes the SMs,
//! Section V-B) and then saturates far above the CPU curves.
//!
//! Run with: `cargo run --release -p bench --bin figure5`

use backend::KernelStrategy;
use bench::{batch_flops, bench_metadata, gpu_row, run_cpu, write_bench_json, Workload};
use serde::Value;

fn main() {
    let sizes = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    let workload = Workload::paper_workload(2026);

    println!(
        "Figure 5 reproduction: GFLOP/s vs number of tensors (unrolled kernels, V=128, {} iters)\n",
        bench::BENCH_ITERS
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "T", "CPU-1", "CPU-4", "CPU-8", "GPU(model)"
    );

    let mut gpu_series = Vec::new();
    let mut cpu1_series = Vec::new();
    let mut json_points = Vec::new();
    for &t in &sizes {
        let sub = workload.subset(t);
        let mut row = Vec::new();
        for threads in [1usize, 4, 8] {
            let (secs, iters) = run_cpu(
                &sub,
                KernelStrategy::Unrolled,
                threads,
                bench::bench_policy(),
                0.0,
            );
            row.push(batch_flops(4, 3, iters) as f64 / secs / 1e9);
        }
        let (gpu, report) = gpu_row(&sub, KernelStrategy::Unrolled);
        let snap = &report.profiles[0].snapshot;
        let g = gpu.gflops();
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            t, row[0], row[1], row[2], g
        );
        json_points.push(Value::object(vec![
            ("num_tensors", Value::UInt(t as u64)),
            ("cpu_1_gflops", Value::Float(row[0])),
            ("cpu_4_gflops", Value::Float(row[1])),
            ("cpu_8_gflops", Value::Float(row[2])),
            ("gpu_gflops", Value::Float(g)),
            ("gpu_seconds", Value::Float(report.seconds)),
            ("gpu_compute_seconds", Value::Float(snap.compute_seconds)),
            ("gpu_memory_seconds", Value::Float(snap.memory_seconds)),
            ("gpu_useful_flops", Value::UInt(report.useful_flops)),
            ("gpu_active_sms", Value::UInt(snap.active_sms as u64)),
        ]));
        cpu1_series.push(row[0]);
        gpu_series.push(g);
    }
    write_bench_json(
        "figure5",
        &Value::object(vec![
            ("meta", bench_metadata("figure5")),
            ("points", Value::Seq(json_points)),
        ]),
    );

    // Crude log-scale chart of CPU-1 vs GPU.
    println!("\nlog-scale sketch ('c' = CPU-1, 'G' = GPU model):");
    let max = gpu_series.iter().cloned().fold(f64::MIN, f64::max);
    let min = cpu1_series
        .iter()
        .cloned()
        .fold(f64::MAX, f64::min)
        .max(1e-3);
    let cols = 60.0;
    for (i, &t) in sizes.iter().enumerate() {
        let pos = |v: f64| -> usize {
            (((v.max(min).ln() - min.ln()) / (max.ln() - min.ln())) * cols) as usize
        };
        let mut line = vec![b' '; cols as usize + 2];
        line[pos(cpu1_series[i])] = b'c';
        line[pos(gpu_series[i])] = b'G';
        println!("{:>6} |{}", t, String::from_utf8(line).unwrap());
    }
    println!(
        "\nshape check: GPU ramps until the device fills (~50+ blocks) then saturates;\n\
         CPU curves are flat in T. Paper's Figure 5 shows the same morphology."
    );
}
