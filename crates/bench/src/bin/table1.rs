//! Reproduce **Table I** of the paper: the 20 index classes of a symmetric
//! tensor in `R^[3,4]` in lexicographic order, shown in both the index
//! representation and the monomial representation (1-based, as printed in
//! the paper).

use symtensor::IndexClassIter;

fn main() {
    println!("Table I: index classes of R^[3,4] in lexicographic order");
    println!("{:>3} | {:^11} | {:^14}", "#", "index", "monomial");
    println!("{:->3}-+-{:-^11}-+-{:-^14}", "", "", "");
    for (row, class) in IndexClassIter::new(3, 4).enumerate() {
        let idx: Vec<String> = class
            .indices()
            .iter()
            .map(|i| (i + 1).to_string()) // 1-based like the paper
            .collect();
        let mono: Vec<String> = class
            .monomial()
            .counts()
            .iter()
            .map(|k| k.to_string())
            .collect();
        println!(
            "{:>3} | {:^11} | {:^14}",
            row + 1,
            idx.join("  "),
            mono.join("  ")
        );
    }
    println!("\n20 classes == C(3+4-1, 3) = C(6, 3); matches the paper exactly");
    println!("(verified bit-for-bit in symtensor::index::tests::table_1_exact_contents).");
}
