//! Kernel-registry economics on a shape with **no** build-time unrolled
//! kernel: what does a tape cost to generate cold, what does the artifact
//! cache give back warm, and what does executing the tape buy over the
//! on-the-fly general kernels?
//!
//! Three measurements on `(m, n) = (5, 4)` (outside
//! `unrolled::GENERATED_SHAPES`, so the runtime generator is the only
//! straight-line path):
//!
//! * **cold generate** — a fresh [`KernelRegistry`] with an empty artifact
//!   cache directory: resolve indices, fold multinomial coefficients,
//!   serialize, and write the artifact;
//! * **warm memo hit** — the same registry again: one map lookup and an
//!   `Arc` clone;
//! * **disk hit** — a *fresh* registry over the now-populated directory
//!   (a second process): load + checksum-validate + deserialize, no
//!   generation;
//!
//! plus tape-vs-general `A·xᵐ` / `A·xᵐ⁻¹` throughput over a packed
//! arena. Correctness is pinned in-bench: tape results must match the
//! general kernels within 1e-5 (f32) before any timing is reported.
//!
//! Writes `BENCH_kernelgen.json`; exits nonzero if the tape is not at
//! least [`MIN_SPEEDUP`]× general-kernel throughput on `axm1`.
//!
//! Run with: `cargo run --release -p bench --bin kernel_cache`

use backend::KernelRegistry;
use bench::{bench_metadata, write_bench_json};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use symtensor::kernels::GeneralKernels;
use symtensor::{TensorBatch, TensorKernels};

const M: usize = 5;
const N: usize = 4;
const SEED: u64 = 2026;

/// Tensors in the throughput arena.
const TENSORS: usize = 20_000;

/// Kernel calls per tensor per pass, modeling the SS-HOPM inner loop.
const REPS: usize = 8;

/// Best-of-N trials per measurement to shed scheduler noise.
const TRIALS: usize = 5;

/// Acceptance floor: tape `axm1` throughput over the general kernels.
const MIN_SPEEDUP: f64 = 2.0;

fn best_of(mut f: impl FnMut() -> f64) -> f64 {
    (0..TRIALS).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn unique_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "tensor-eig-kernel-cache-bench-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&p).ok();
    p
}

/// Seconds for one `tape::<f32>` resolution through a registry built by
/// `make` (the construction itself stays outside the timed region).
fn time_resolve(make: impl Fn() -> KernelRegistry) -> f64 {
    best_of(|| {
        let registry = make();
        let started = Instant::now();
        let k = registry.tape::<f32>(M, N).expect("(5,4) is tape-supported");
        let seconds = started.elapsed().as_secs_f64();
        std::hint::black_box(k);
        seconds
    })
}

/// `axm1` + `axm` over the whole arena, `REPS` passes; returns (seconds,
/// checksum).
fn throughput(kernels: &dyn TensorKernels<f32>, batch: &TensorBatch<f32>, x: &[f32]) -> (f64, f64) {
    let mut y = vec![0.0f32; N];
    let mut checksum = 0.0f64;
    let started = Instant::now();
    for _ in 0..REPS {
        for a in batch.iter() {
            kernels.axm1(a, x, &mut y).expect("bench shapes match");
            for &v in &y {
                checksum += f64::from(v.abs());
            }
            checksum += f64::from(kernels.axm(a, x).expect("bench shapes match").abs());
        }
    }
    (started.elapsed().as_secs_f64(), checksum)
}

fn main() -> ExitCode {
    println!(
        "kernel registry: tape generate/cache costs and tape-vs-general throughput\n\
         (m={M}, n={N}, f32, {TENSORS} tensors, {REPS} passes, best of {TRIALS})\n"
    );

    // --- resolution costs -------------------------------------------------
    let dir = unique_dir("artifacts");
    // Cold: empty directory every trial, so generation + write is timed.
    let dir_cold = dir.clone();
    let cold_seconds = time_resolve(|| {
        KernelRegistry::clear_disk_at(&dir_cold).ok();
        KernelRegistry::with_cache_dir(&dir_cold)
    });
    // Populate once, then measure the two warm paths.
    let registry = KernelRegistry::with_cache_dir(&dir);
    registry.tape::<f32>(M, N).expect("(5,4) is tape-supported");
    let memo_seconds = best_of(|| {
        let started = Instant::now();
        let k = registry.tape::<f32>(M, N).expect("memoized");
        let seconds = started.elapsed().as_secs_f64();
        std::hint::black_box(k);
        seconds
    });
    let dir_disk = dir.clone();
    let disk_seconds = time_resolve(|| KernelRegistry::with_cache_dir(&dir_disk));
    let stats = registry.stats();
    println!("cold generate (+write):  {:>10.1} us", cold_seconds * 1e6);
    println!("warm memo hit:           {:>10.3} us", memo_seconds * 1e6);
    println!("warm disk hit (load):    {:>10.1} us", disk_seconds * 1e6);

    // --- execution throughput --------------------------------------------
    let mut rng = StdRng::seed_from_u64(SEED);
    let batch = TensorBatch::<f32>::random(M, N, TENSORS, &mut rng).expect("bench shape is valid");
    let x: Vec<f32> = (0..N).map(|_| rng.gen_range(-1.0f32..=1.0)).collect();
    let tape = registry.tape::<f32>(M, N).expect("memoized");

    // Pin correctness before timing anything.
    let mut want = vec![0.0f32; N];
    let mut got = vec![0.0f32; N];
    for a in batch.iter().take(512) {
        GeneralKernels.axm1(a, &x, &mut want).expect("shapes match");
        tape.axm1(a, &x, &mut got).expect("shapes match");
        for (g, w) in got.iter().zip(&want) {
            assert!(
                (g - w).abs() <= 1e-5 * (1.0 + w.abs()),
                "tape diverged: {g} vs {w}"
            );
        }
    }

    let (general_seconds, general_sum) = (0..TRIALS)
        .map(|_| throughput(&GeneralKernels, &batch, &x))
        .fold(
            (f64::INFINITY, 0.0),
            |acc, v| if v.0 < acc.0 { v } else { acc },
        );
    let (tape_seconds, tape_sum) =
        (0..TRIALS)
            .map(|_| throughput(&*tape, &batch, &x))
            .fold(
                (f64::INFINITY, 0.0),
                |acc, v| if v.0 < acc.0 { v } else { acc },
            );
    let rel = (general_sum - tape_sum).abs() / general_sum.abs().max(1.0);
    assert!(rel < 1e-3, "checksum drift between paths: {rel:e}");

    let evals = (TENSORS * REPS) as f64;
    let speedup = general_seconds / tape_seconds;
    println!(
        "\n{:>10} {:>16} {:>16} {:>9}",
        "tensors", "general Mt/s", "tape Mt/s", "speedup"
    );
    println!(
        "{TENSORS:>10} {:>16.2} {:>16.2} {speedup:>8.2}x",
        evals / general_seconds / 1e6,
        evals / tape_seconds / 1e6,
    );

    let value = Value::object(vec![
        ("metadata", bench_metadata("kernel_cache")),
        ("m", Value::UInt(M as u64)),
        ("n", Value::UInt(N as u64)),
        ("tensors", Value::UInt(TENSORS as u64)),
        ("reps", Value::UInt(REPS as u64)),
        ("cold_generate_seconds", Value::Float(cold_seconds)),
        ("warm_memo_hit_seconds", Value::Float(memo_seconds)),
        ("warm_disk_hit_seconds", Value::Float(disk_seconds)),
        ("registry_disk_hits", Value::UInt(stats.disk_hits)),
        ("registry_generated", Value::UInt(stats.generated)),
        ("general_seconds", Value::Float(general_seconds)),
        ("tape_seconds", Value::Float(tape_seconds)),
        (
            "general_tensor_evals_per_sec",
            Value::Float(evals / general_seconds),
        ),
        (
            "tape_tensor_evals_per_sec",
            Value::Float(evals / tape_seconds),
        ),
        ("tape_speedup_over_general", Value::Float(speedup)),
        ("min_speedup", Value::Float(MIN_SPEEDUP)),
        ("accept", Value::Bool(speedup >= MIN_SPEEDUP)),
    ]);
    write_bench_json("kernelgen", &value);
    std::fs::remove_dir_all(&dir).ok();

    if speedup < MIN_SPEEDUP {
        eprintln!("FAIL: tape speedup {speedup:.2}x below the {MIN_SPEEDUP:.1}x floor");
        return ExitCode::FAILURE;
    }
    println!("\nPASS: tape is {speedup:.2}x general (floor {MIN_SPEEDUP:.1}x)");
    ExitCode::SUCCESS
}
