//! Benchmarks of the GPU simulator itself: functional-execution throughput
//! of a launch (how fast the simulator runs, not the modeled GPU time) and
//! the cost of the occupancy/timing analytics, so simulator regressions
//! are caught like any other performance regression.

use backend::{GpuSimBackend, KernelStrategy};
use bench::{run_on, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use gpusim::{DeviceSpec, KernelResources, Occupancy};
use sshopm::IterationPolicy;
use std::hint::black_box;

fn bench_launch(c: &mut Criterion) {
    let workload = Workload::random(32, 32, 4, 3, 6);
    let policy = IterationPolicy::Fixed(10);

    let mut group = c.benchmark_group("gpusim_launch_32x32");
    group.sample_size(10);
    for strategy in [KernelStrategy::General, KernelStrategy::Unrolled] {
        let gpu = GpuSimBackend::new(DeviceSpec::tesla_c2050(), strategy);
        group.bench_function(strategy.name(), |b| {
            b.iter(|| black_box(run_on(&gpu, &workload, policy, 0.0)))
        });
    }
    group.finish();
}

fn bench_occupancy(c: &mut Criterion) {
    let device = DeviceSpec::tesla_c2050();
    c.bench_function("occupancy_calculator", |b| {
        b.iter(|| {
            for m in 2..8usize {
                for n in 2..8usize {
                    let res = KernelResources::sshopm(m, n, 128, 4, true);
                    black_box(Occupancy::compute(&device, &res));
                }
            }
        })
    });
}

criterion_group!(benches, bench_launch, bench_occupancy);
criterion_main!(benches);
