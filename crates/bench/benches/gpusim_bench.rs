//! Benchmarks of the GPU simulator itself: functional-execution throughput
//! of a launch (how fast the simulator runs, not the modeled GPU time) and
//! the cost of the occupancy/timing analytics, so simulator regressions
//! are caught like any other performance regression.

use bench::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use gpusim::{DeviceSpec, GpuVariant, KernelResources, Occupancy};
use sshopm::IterationPolicy;
use std::hint::black_box;

fn bench_launch(c: &mut Criterion) {
    let workload = Workload::random(32, 32, 4, 3, 6);
    let device = DeviceSpec::tesla_c2050();
    let policy = IterationPolicy::Fixed(10);

    let mut group = c.benchmark_group("gpusim_launch_32x32");
    group.sample_size(10);
    for variant in [GpuVariant::General, GpuVariant::Unrolled] {
        group.bench_function(variant.name(), |b| {
            b.iter(|| {
                black_box(gpusim::launch_sshopm(
                    &device,
                    &workload.tensors,
                    &workload.starts,
                    policy,
                    0.0,
                    variant,
                ))
            })
        });
    }
    group.finish();
}

fn bench_occupancy(c: &mut Criterion) {
    let device = DeviceSpec::tesla_c2050();
    c.bench_function("occupancy_calculator", |b| {
        b.iter(|| {
            for m in 2..8usize {
                for n in 2..8usize {
                    let res = KernelResources::sshopm(m, n, 128, true);
                    black_box(Occupancy::compute(&device, &res));
                }
            }
        })
    });
}

criterion_group!(benches, bench_launch, bench_occupancy);
criterion_main!(benches);
