//! Criterion microbenchmarks of the two computational kernels across
//! implementations (Table II's computation rows, measured): dense baseline
//! vs symmetric on-the-fly vs precomputed tables vs unrolled, at the
//! paper's application shape (4,3) and at two larger shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use symtensor::kernels::{axm, axm1, PrecomputedTables};
use symtensor::{BlockedKernels, DenseTensor, SymTensor, TensorKernels};
use unrolled::UnrolledKernels;

fn bench_axm(c: &mut Criterion) {
    let mut group = c.benchmark_group("axm");
    for (m, n) in [(4usize, 3usize), (4, 5), (6, 3)] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = SymTensor::<f32>::random(m, n, &mut rng);
        let dense = DenseTensor::from_sym(&a);
        let tables = PrecomputedTables::new(m, n);
        let unroll = UnrolledKernels::for_shape(m, n).unwrap();
        let blocked = BlockedKernels::for_shape(m, n).unwrap();
        let x: Vec<f32> = (0..n).map(|i| 0.2 + 0.1 * i as f32).collect();

        group.bench_with_input(
            BenchmarkId::new("dense", format!("{m}x{n}")),
            &(),
            |b, _| b.iter(|| black_box(dense.axm_dense(black_box(&x)).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("general", format!("{m}x{n}")),
            &(),
            |b, _| b.iter(|| black_box(axm(black_box(&a), black_box(&x)))),
        );
        group.bench_with_input(
            BenchmarkId::new("precomputed", format!("{m}x{n}")),
            &(),
            |b, _| b.iter(|| black_box(tables.axm(black_box(&a), black_box(&x)).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("blocked", format!("{m}x{n}")),
            &(),
            |b, _| {
                b.iter(|| {
                    black_box(TensorKernels::axm(
                        &blocked,
                        black_box(a.view()),
                        black_box(&x),
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("unrolled", format!("{m}x{n}")),
            &(),
            |b, _| {
                b.iter(|| {
                    black_box(TensorKernels::axm(
                        &unroll,
                        black_box(a.view()),
                        black_box(&x),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_axm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("axm1");
    for (m, n) in [(4usize, 3usize), (4, 5), (6, 3)] {
        let mut rng = StdRng::seed_from_u64(2);
        let a = SymTensor::<f32>::random(m, n, &mut rng);
        let dense = DenseTensor::from_sym(&a);
        let tables = PrecomputedTables::new(m, n);
        let unroll = UnrolledKernels::for_shape(m, n).unwrap();
        let blocked = BlockedKernels::for_shape(m, n).unwrap();
        let x: Vec<f32> = (0..n).map(|i| 0.2 + 0.1 * i as f32).collect();
        let mut y = vec![0.0f32; n];

        group.bench_with_input(
            BenchmarkId::new("dense", format!("{m}x{n}")),
            &(),
            |b, _| b.iter(|| black_box(dense.axm1_dense(black_box(&x)).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("general", format!("{m}x{n}")),
            &(),
            |b, _| {
                b.iter(|| {
                    axm1(black_box(&a), black_box(&x), &mut y).unwrap();
                    black_box(y[0])
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("precomputed", format!("{m}x{n}")),
            &(),
            |b, _| {
                b.iter(|| {
                    tables.axm1(black_box(&a), black_box(&x), &mut y).unwrap();
                    black_box(y[0])
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("blocked", format!("{m}x{n}")),
            &(),
            |b, _| {
                b.iter(|| {
                    TensorKernels::axm1(&blocked, black_box(a.view()), black_box(&x), &mut y)
                        .unwrap();
                    black_box(y[0])
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("unrolled", format!("{m}x{n}")),
            &(),
            |b, _| {
                b.iter(|| {
                    TensorKernels::axm1(&unroll, black_box(a.view()), black_box(&x), &mut y)
                        .unwrap();
                    black_box(y[0])
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_axm, bench_axm1);
criterion_main!(benches);
