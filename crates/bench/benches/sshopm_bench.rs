//! Criterion benchmarks of the SS-HOPM iteration itself: per-solve cost
//! under the general vs unrolled kernels, and fixed vs adaptive shifts
//! (the adaptive shift pays a Hessian eigensolve per iteration but
//! converges in fewer iterations).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sshopm::{IterationPolicy, Shift, SsHopm};
use std::hint::black_box;
use symtensor::kernels::GeneralKernels;
use symtensor::SymTensor;
use unrolled::UnrolledKernels;

fn bench_single_solve(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let a = SymTensor::<f32>::random(4, 3, &mut rng);
    let x0 = [0.48f32, -0.62, 0.62];
    let policy = IterationPolicy::Fixed(20);
    let unroll = UnrolledKernels::for_shape(4, 3).unwrap();

    let mut group = c.benchmark_group("sshopm_solve_20iters");
    group.bench_function("general", |b| {
        let s = SsHopm::new(Shift::Fixed(0.0)).with_policy(policy);
        b.iter(|| black_box(s.solve_with(&GeneralKernels, black_box(&a), &x0)))
    });
    group.bench_function("unrolled", |b| {
        let s = SsHopm::new(Shift::Fixed(0.0)).with_policy(policy);
        b.iter(|| black_box(s.solve_with(&unroll, black_box(&a), &x0)))
    });
    group.finish();
}

fn bench_shift_policies(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let a = SymTensor::<f64>::random(4, 3, &mut rng);
    let x0 = [0.48f64, -0.62, 0.62];

    let mut group = c.benchmark_group("sshopm_to_convergence");
    group.bench_function("fixed_convex_bound", |b| {
        let s = SsHopm::new(Shift::Convex).with_tolerance(1e-12);
        b.iter(|| black_box(s.solve(black_box(&a), &x0)))
    });
    group.bench_function("adaptive", |b| {
        let s = SsHopm::new(Shift::Adaptive).with_tolerance(1e-12);
        b.iter(|| black_box(s.solve(black_box(&a), &x0)))
    });
    group.bench_function("zero_shift", |b| {
        let s = SsHopm::new(Shift::Fixed(0.0)).with_tolerance(1e-12);
        b.iter(|| black_box(s.solve(black_box(&a), &x0)))
    });
    group.finish();
}

fn bench_refinement(c: &mut Criterion) {
    // The mixed-precision workflow: rough SS-HOPM solve, then Newton
    // polish. Measures the per-pair polish cost (bordered LU solves).
    let mut rng = StdRng::seed_from_u64(5);
    let a = SymTensor::<f64>::random(4, 3, &mut rng);
    let rough = SsHopm::new(Shift::Convex)
        .with_tolerance(1e-6)
        .solve(&a, &[0.48, -0.62, 0.62]);

    let mut group = c.benchmark_group("newton_refine");
    group.bench_function("rough_plus_polish", |b| {
        b.iter(|| black_box(sshopm::refine(&a, &rough, 4, 1e-14)))
    });
    group.bench_function("tight_sshopm_only", |b| {
        let s = SsHopm::new(Shift::Convex)
            .with_tolerance(1e-15)
            .with_max_iters(100_000);
        b.iter(|| black_box(s.solve(black_box(&a), &[0.48, -0.62, 0.62])))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_solve,
    bench_shift_policies,
    bench_refinement
);
criterion_main!(benches);
