//! The Table III(a) unrolled-speedup column, measured as a Criterion
//! benchmark: the 1-thread batch solve over a 64-tensor subset of the
//! paper workload shape, swept across every CPU kernel strategy.
//! (The full 1024-tensor run lives in the `table3` binary; this keeps
//! Criterion iterations tractable.)

use backend::{CpuSequential, KernelStrategy};
use bench::{bench_policy, run_on, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_batch(c: &mut Criterion) {
    let workload = Workload::random(64, 32, 4, 3, 5);

    let mut group = c.benchmark_group("batch_64tensors_32starts");
    group.sample_size(10);
    for strategy in KernelStrategy::ALL {
        let cpu = CpuSequential::new(strategy);
        group.bench_function(strategy.name(), |b| {
            b.iter(|| black_box(run_on(&cpu, &workload, bench_policy(), 0.0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
