//! The Table III(a) unrolled-speedup column, measured as a Criterion
//! benchmark: the 1-thread batch solve over a 64-tensor subset of the
//! paper workload shape, general vs precomputed vs unrolled kernels.
//! (The full 1024-tensor run lives in the `table3` binary; this keeps
//! Criterion iterations tractable.)

use bench::{bench_policy, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use sshopm::{BatchSolver, Shift, SsHopm};
use std::hint::black_box;
use symtensor::kernels::{GeneralKernels, PrecomputedTables};
use unrolled::UnrolledKernels;

fn bench_batch(c: &mut Criterion) {
    let workload = Workload::random(64, 32, 4, 3, 5);
    let solver = BatchSolver::new(SsHopm::new(Shift::Fixed(0.0)).with_policy(bench_policy()));
    let tables = PrecomputedTables::new(4, 3);
    let unroll = UnrolledKernels::for_shape(4, 3).unwrap();

    let mut group = c.benchmark_group("batch_64tensors_32starts");
    group.sample_size(10);
    group.bench_function("general", |b| {
        b.iter(|| {
            black_box(solver.solve_sequential(&GeneralKernels, &workload.tensors, &workload.starts))
        })
    });
    group.bench_function("precomputed", |b| {
        b.iter(|| black_box(solver.solve_sequential(&tables, &workload.tensors, &workload.starts)))
    });
    group.bench_function("unrolled", |b| {
        b.iter(|| black_box(solver.solve_sequential(&unroll, &workload.tensors, &workload.starts)))
    });
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
