//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * **storage-compute trade-off** (paper Section III-B5): computing index
//!   representations and multinomials on the fly vs precomputed tables,
//!   across tensor shapes (the tables cost `(m+2)x` storage);
//! * **occupancy cliff** (paper Section V-E): modeled GPU throughput as
//!   the tensor shape grows past (4, 5);
//! * **starting-vector scheme**: random uniform (the paper's) vs
//!   deterministic Fibonacci starts — convergence iteration counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sshopm::{Shift, SsHopm};
use std::hint::black_box;
use symtensor::kernels::{axm1, PrecomputedTables};
use symtensor::SymTensor;

fn ablation_precomputed_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tables_axm1");
    for (m, n) in [(3usize, 3usize), (4, 3), (4, 5), (6, 3), (5, 3)] {
        let mut rng = StdRng::seed_from_u64(7);
        let a = SymTensor::<f32>::random(m, n, &mut rng);
        let tables = PrecomputedTables::new(m, n);
        let x: Vec<f32> = (0..n).map(|i| 0.2 + 0.1 * i as f32).collect();
        let mut y = vec![0.0f32; n];

        group.bench_with_input(
            BenchmarkId::new("on_the_fly", format!("{m}x{n}")),
            &(),
            |b, _| {
                b.iter(|| {
                    axm1(black_box(a.view()), black_box(&x), &mut y).unwrap();
                    black_box(y[0])
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("precomputed", format!("{m}x{n}")),
            &(),
            |b, _| {
                b.iter(|| {
                    tables
                        .axm1(black_box(a.view()), black_box(&x), &mut y)
                        .unwrap();
                    black_box(y[0])
                })
            },
        );
    }
    group.finish();
}

fn ablation_start_schemes(c: &mut Criterion) {
    // Total iterations to convergence over a fixed start budget: the work
    // metric that decides between random and deterministic coverage.
    let mut rng = StdRng::seed_from_u64(8);
    let a = SymTensor::<f64>::random(4, 3, &mut rng);
    let random_starts = sshopm::starts::random_uniform_starts::<f64, _>(3, 16, &mut rng);
    let fib_starts = sshopm::starts::fibonacci_sphere::<f64>(16);
    let solver = SsHopm::new(Shift::Convex).with_tolerance(1e-10);

    let mut group = c.benchmark_group("ablation_starts_16solves");
    group.sample_size(10);
    group.bench_function("random_uniform", |b| {
        b.iter(|| {
            let total: usize = random_starts
                .iter()
                .map(|x0| solver.solve(black_box(&a), x0).iterations)
                .sum();
            black_box(total)
        })
    });
    group.bench_function("fibonacci", |b| {
        b.iter(|| {
            let total: usize = fib_starts
                .iter()
                .map(|x0| solver.solve(black_box(&a), x0).iterations)
                .sum();
            black_box(total)
        })
    });
    group.finish();
}

fn ablation_occupancy_cliff(c: &mut Criterion) {
    // Not a wall-clock ablation: evaluates the modeled GFLOP/s across
    // shapes once per iteration so the cliff shows up in bench reports.
    let gpu = backend::GpuSimBackend::new(
        gpusim::DeviceSpec::tesla_c2050(),
        backend::KernelStrategy::General,
    );
    let mut group = c.benchmark_group("ablation_occupancy_model");
    group.sample_size(10);
    for (m, n) in [(4usize, 3usize), (4, 5), (6, 3), (4, 4)] {
        let workload = bench::Workload::random(32, 64, m, n, 9);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &(),
            |b, _| {
                b.iter(|| {
                    let report =
                        bench::run_on(&gpu, &workload, sshopm::IterationPolicy::Fixed(5), 0.0);
                    black_box(report.gflops())
                })
            },
        );
    }
    group.finish();
}

fn ablation_cse(c: &mut Criterion) {
    // The paper's Section V-D: CSE "would reduce the flop count but also
    // introduce dependencies in the unrolled instructions" — measure which
    // effect wins on this target, per shape.
    use symtensor::TensorKernels;
    use unrolled::{CseUnrolledKernels, UnrolledKernels};
    let mut group = c.benchmark_group("ablation_cse_axm1");
    for (m, n) in [(4usize, 3usize), (4, 5), (6, 3)] {
        let mut rng = StdRng::seed_from_u64(10);
        let a = SymTensor::<f32>::random(m, n, &mut rng);
        let plain = UnrolledKernels::for_shape(m, n).unwrap();
        let cse = CseUnrolledKernels::for_shape(m, n).unwrap();
        let x: Vec<f32> = (0..n).map(|i| 0.2 + 0.1 * i as f32).collect();
        let mut y = vec![0.0f32; n];
        group.bench_with_input(
            BenchmarkId::new("plain", format!("{m}x{n}")),
            &(),
            |b, _| {
                b.iter(|| {
                    TensorKernels::axm1(&plain, black_box(a.view()), black_box(&x), &mut y)
                        .unwrap();
                    black_box(y[0])
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("cse", format!("{m}x{n}")), &(), |b, _| {
            b.iter(|| {
                TensorKernels::axm1(&cse, black_box(a.view()), black_box(&x), &mut y).unwrap();
                black_box(y[0])
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_precomputed_tables,
    ablation_start_schemes,
    ablation_occupancy_cliff,
    ablation_cse
);
criterion_main!(benches);
