//! Minimal JSON writer and recursive-descent parser for [`Value`].

use crate::{Error, Value};

pub(crate) fn write(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if v.is_finite() {
                // `{:?}` keeps a trailing `.0` for integral floats, so the
                // token is unambiguously a float, and round-trips exactly.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write(item, out, indent, depth + 1);
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                byte as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => return Err(Error::custom("expected ',' or ']'")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(pairs)),
                _ => return Err(Error::custom("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs: decode \uD8xx\uDCxx sequences.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            let combined =
                                0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| Error::custom("invalid unicode escape"))?);
                    }
                    _ => return Err(Error::custom("invalid escape")),
                },
                Some(byte) => {
                    // Re-assemble UTF-8 multibyte sequences byte-wise.
                    if byte < 0x80 {
                        out.push(byte as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(byte);
                        let end = start + len;
                        let slice = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| Error::custom("truncated utf-8"))?;
                        let s = std::str::from_utf8(slice)
                            .map_err(|_| Error::custom("invalid utf-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error::custom("truncated \\u"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("invalid hex digit"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::custom("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::custom("invalid integer"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = Value::object(vec![
            ("name", Value::Str("sshopm".into())),
            ("lambda", Value::Float(-0.5)),
            ("iters", Value::UInt(31)),
            (
                "trace",
                Value::Seq(vec![Value::Float(1.0), Value::Float(2.5)]),
            ),
            ("converged", Value::Bool(true)),
            ("none", Value::Null),
        ]);
        let json = v.to_json();
        let back = parse(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn round_trip_pretty() {
        let v = Value::Seq(vec![
            Value::object(vec![("k", Value::Int(-2))]),
            Value::Seq(vec![]),
            Value::Map(vec![]),
        ]);
        let back = parse(&v.to_json_pretty()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Value::Str("a\"b\\c\nd\té λ".into());
        let back = parse(&v.to_json()).unwrap();
        assert_eq!(back, v);
        let parsed = parse(r#""é λ 😀""#).unwrap();
        assert_eq!(parsed, Value::Str("é λ 😀".into()));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn numbers_parse_by_kind() {
        assert_eq!(parse("42").unwrap(), Value::UInt(42));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("4.25e2").unwrap(), Value::Float(425.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
