//! The [`Value`] data model: a JSON-like tree.

use crate::json;

/// A JSON-like value tree — the universal data model of this serde
/// stand-in. Maps preserve insertion order (they are association lists),
/// which keeps emitted JSON stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction).
    Int(i64),
    /// Unsigned integer (JSON number without fraction).
    UInt(u64),
    /// Floating point (JSON number; non-finite values serialize as `null`).
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Build an object from `(key, value)` pairs.
    pub fn object(pairs: Vec<(&str, Value)>) -> Value {
        Value::Map(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Append a key to an object; panics if `self` is not a map.
    pub fn insert(&mut self, key: &str, value: Value) {
        match self {
            Value::Map(pairs) => pairs.push((key.to_owned(), value)),
            _ => panic!("Value::insert on non-map"),
        }
    }

    /// The value as `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::UInt(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a nonnegative integer (or an integral
    /// nonnegative float, as produced by JSON round-trips).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            Value::Int(v) if *v >= 0 => Some(*v as u64),
            Value::Float(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer (or integral float).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::UInt(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            Value::Float(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if it is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        json::write(self, &mut out, None, 0);
        out
    }

    /// Serialize to pretty-printed JSON (2-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        json::write(self, &mut out, Some(2), 0);
        out
    }

    /// Parse a JSON document into a `Value`.
    pub fn parse_json(input: &str) -> Result<Value, crate::Error> {
        json::parse(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_get_insert() {
        let mut v = Value::object(vec![("a", Value::UInt(1))]);
        v.insert("b", Value::Str("x".into()));
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert!(v.get("c").is_none());
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Float(3.0).as_u64(), Some(3));
        assert_eq!(Value::Float(3.5).as_u64(), None);
        assert_eq!(Value::Int(-1).as_u64(), None);
        assert_eq!(Value::UInt(7).as_i64(), Some(7));
        assert_eq!(Value::Int(-2).as_f64(), Some(-2.0));
    }
}
