//! Local API-compatible stand-in for `serde` (offline build).
//!
//! Real serde is a zero-copy serialization *framework*; this workspace only
//! needs (a) `Serialize`/`Deserialize` bounds on storable types and (b) a
//! way to write/read JSON for telemetry and benchmark artifacts. So this
//! stand-in collapses the data model to a single JSON-like [`Value`] enum:
//!
//! * `Serialize` is "convert to [`Value`]" (one method),
//! * `Deserialize` is "convert from [`Value`]" (one method),
//! * [`Value::to_json`] / [`Value::parse_json`] provide the byte format.
//!
//! There is no proc-macro derive; types implement the two one-method
//! traits by hand (see `SymTensor` for the pattern).

mod json;
mod value;

pub use value::Value;

/// Serialization: convert `self` into the [`Value`] data model.
pub trait Serialize {
    /// Represent `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization: reconstruct `Self` from the [`Value`] data model.
///
/// The lifetime parameter mirrors real serde's `Deserialize<'de>` so that
/// bounds written against the real API (`for<'de> Deserialize<'de>`,
/// `de::DeserializeOwned`) keep compiling.
pub trait Deserialize<'de>: Sized {
    /// Rebuild `Self` from a [`Value`], or describe why it can't be.
    fn from_value(value: &'de Value) -> Result<Self, Error>;
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Create an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// The `serde::de` module: deserialization traits.
pub mod de {
    pub use crate::{Deserialize, Error};

    /// Types deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
}

/// The `serde::ser` module: serialization traits.
pub mod ser {
    pub use crate::{Error, Serialize};
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &'de Value) -> Result<Self, Error> {
                value
                    .as_u64()
                    .map(|v| v as $t)
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

serialize_int!(u8, u16, u32, u64, usize);

macro_rules! serialize_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &'de Value) -> Result<Self, Error> {
                value
                    .as_i64()
                    .map(|v| v as $t)
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

serialize_sint!(i8, i16, i32, i64, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &'de Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|v| v as $t)
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

serialize_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &'de Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &'de Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &'de Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &'de Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &'de Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v = 42u64.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), 42);
        let v = (-3i64).to_value();
        assert_eq!(i64::from_value(&v).unwrap(), -3);
        let v = 1.5f64.to_value();
        assert_eq!(f64::from_value(&v).unwrap(), 1.5);
        let v = true.to_value();
        assert!(bool::from_value(&v).unwrap());
        let v = "hi".to_string().to_value();
        assert_eq!(String::from_value(&v).unwrap(), "hi");
    }

    #[test]
    fn vec_round_trips_through_json() {
        let data = vec![1.0f64, -2.5, 3.25];
        let json = data.to_value().to_json();
        let parsed = Value::parse_json(&json).unwrap();
        let back = Vec::<f64>::from_value(&parsed).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn deserialize_owned_bound_is_satisfied() {
        fn takes<T: crate::de::DeserializeOwned>() {}
        takes::<Vec<f64>>();
        takes::<String>();
        takes::<u64>();
    }
}
