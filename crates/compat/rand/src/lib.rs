//! Local API-compatible stand-in for the `rand` crate (0.8 surface).
//!
//! The build environment has no route to crates.io, so this crate provides
//! the exact subset of the `rand` 0.8 API used by this workspace:
//! `StdRng`, `SeedableRng::{from_seed, seed_from_u64}`, `RngCore`, and
//! `Rng::{gen, gen_range}` over float and integer ranges.
//!
//! `StdRng` here is xoshiro256++ seeded through splitmix64 — deterministic
//! per seed (which is all the workspace relies on) but *not* stream
//! compatible with upstream's ChaCha12-based `StdRng`.

pub mod distributions;
pub mod rngs;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&word[..len]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
///
/// Blanket-implemented for every [`RngCore`], including unsized ones, so
/// user code may take `R: Rng + ?Sized` exactly as with the real crate.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let v: f64 = self.gen();
        v < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array for `StdRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct by expanding a `u64` into a full seed via splitmix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&word[..len]);
        }
        Self::from_seed(seed)
    }
}

/// splitmix64 step: advances `state` and returns the next output word.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience seeded-from-entropy constructor used by `rand::thread_rng`
/// style call sites (deterministic here: seeded from the system clock's
/// nanosecond counter XOR the thread id hash).
pub fn random_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    nanos ^ 0xA076_1D64_78BD_642F
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_f64_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&v), "{v}");
            let w: f64 = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&w), "{w}");
        }
    }

    #[test]
    fn gen_range_usize_stays_in_bounds_and_hits_all() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unsized_rng_bound_compiles() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(-1.0..=1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = draw(&mut rng);
        assert!((-1.0..=1.0).contains(&v));
    }

    #[test]
    fn gen_produces_distinct_types() {
        let mut rng = StdRng::seed_from_u64(5);
        let _: u64 = rng.gen();
        let _: f64 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
