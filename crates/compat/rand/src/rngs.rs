//! Concrete generators: the workspace only uses [`StdRng`].

use crate::{RngCore, SeedableRng};

/// The standard seedable generator: xoshiro256++.
///
/// Deterministic per seed; not stream-compatible with upstream `StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // All-zero state is a fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 1, 2];
        }
        StdRng { s }
    }
}
