//! Distributions: [`Standard`] sampling and uniform ranges.

use crate::RngCore;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: full range for integers,
/// uniform `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// `u64` in `[0, 2^53)` mapped to `f64` in `[0, 1)` with 53-bit precision.
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
pub(crate) fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f32(rng)
    }
}

/// Uniform sampling over ranges, mirroring `rand::distributions::uniform`.
pub mod uniform {
    use super::{unit_f32, unit_f64};
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Draw one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range_impls {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty integer range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "empty float range");
            let v = self.start + unit_f64(rng) * (self.end - self.start);
            // Guard against rounding up to the excluded endpoint.
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl SampleRange<f64> for RangeInclusive<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty float range");
            // 53-bit fraction scaled to the closed interval.
            let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            lo + unit * (hi - lo)
        }
    }

    impl SampleRange<f32> for Range<f32> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "empty float range");
            let v = self.start + unit_f32(rng) * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl SampleRange<f32> for RangeInclusive<f32> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty float range");
            let unit = (rng.next_u32() >> 8) as f32 / ((1u32 << 24) - 1) as f32;
            lo + unit * (hi - lo)
        }
    }
}
