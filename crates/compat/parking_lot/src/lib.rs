//! Local API-compatible stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free API:
//! `lock()` / `read()` / `write()` return guards directly (no `Result`),
//! and a lock poisoned by a panicking holder is recovered rather than
//! propagating the poison.

use std::sync::{self, TryLockError};

/// A mutual exclusion primitive (std mutex, poisoning ignored).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock (std rwlock, poisoning ignored).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
