//! Parallel iterator pipeline: indexed sources driven by a work-stealing
//! index loop across scoped threads.

use crate::pool::current_num_threads;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An indexed, thread-safe source of items. Implementors promise that
/// `item(i)` is safe to call concurrently for *distinct* indices and is
/// called at most once per index per drive.
pub trait ParallelSource: Sync {
    /// The produced item type.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce the item at index `i` (`i < len()`).
    fn item(&self, i: usize) -> Self::Item;
}

/// Parallel iterator over a slice, yielding `&T`.
pub struct SlicePar<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelSource for SlicePar<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn item(&self, i: usize) -> Self::Item {
        &self.slice[i]
    }
}

/// Parallel iterator over `Range<usize>`, yielding `usize`.
pub struct RangePar {
    start: usize,
    len: usize,
}

impl ParallelSource for RangePar {
    type Item = usize;

    fn len(&self) -> usize {
        self.len
    }

    fn item(&self, i: usize) -> Self::Item {
        self.start + i
    }
}

/// Lazily mapped parallel iterator.
pub struct MapPar<S, F> {
    base: S,
    f: F,
}

impl<S, F, R> ParallelSource for MapPar<S, F>
where
    S: ParallelSource,
    F: Fn(S::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn item(&self, i: usize) -> Self::Item {
        (self.f)(self.base.item(i))
    }
}

/// The user-facing parallel iterator API (subset of rayon's).
pub trait ParallelIterator: ParallelSource + Sized {
    /// Map each item through `f` in parallel.
    fn map<F, R>(self, f: F) -> MapPar<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        MapPar { base: self, f }
    }

    /// Run `f` on every item in parallel, discarding results.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        drive_discard(&self.map(f));
    }

    /// Collect all items in source order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum all items.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item>,
    {
        drive_collect(&self).into_iter().sum()
    }

    /// Number of items (sources here are exact-sized).
    fn count(self) -> usize {
        self.len()
    }
}

impl<T: ParallelSource + Sized> ParallelIterator for T {}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type.
    type Item: Send;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangePar;
    type Item = usize;

    fn into_par_iter(self) -> RangePar {
        RangePar {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecPar<T>;
    type Item = T;

    fn into_par_iter(self) -> VecPar<T> {
        VecPar {
            items: self
                .into_iter()
                .map(Some)
                .map(std::sync::Mutex::new)
                .collect(),
        }
    }
}

/// Owned-`Vec` parallel iterator; items are moved out by index.
pub struct VecPar<T> {
    items: Vec<std::sync::Mutex<Option<T>>>,
}

impl<T: Send> ParallelSource for VecPar<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn item(&self, i: usize) -> Self::Item {
        self.items[i]
            .lock()
            .expect("VecPar slot lock")
            .take()
            .expect("VecPar item taken twice")
    }
}

/// Conversion producing a parallel iterator of shared references.
pub trait IntoParallelRefIterator<'data> {
    /// The iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type (`&'data T`).
    type Item: Send + 'data;

    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = SlicePar<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> SlicePar<'data, T> {
        SlicePar { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = SlicePar<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> SlicePar<'data, T> {
        SlicePar { slice: self }
    }
}

/// Conversion producing a parallel iterator of mutable references.
pub trait IntoParallelRefMutIterator<'data> {
    /// The iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type (`&'data mut T`).
    type Item: Send + 'data;

    /// Parallel iterator over `&mut self`'s elements.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = SliceParMut<'data, T>;
    type Item = &'data mut T;

    fn par_iter_mut(&'data mut self) -> SliceParMut<'data, T> {
        SliceParMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Iter = SliceParMut<'data, T>;
    type Item = &'data mut T;

    fn par_iter_mut(&'data mut self) -> SliceParMut<'data, T> {
        self.as_mut_slice().par_iter_mut()
    }
}

/// Parallel iterator over a mutable slice. Soundness: the drive loop hands
/// each index to exactly one worker, so the produced `&mut T`s never alias.
pub struct SliceParMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: each index is claimed by exactly one worker (see `drive_*`), so
// distinct `&mut T`s are handed to distinct threads; `T: Send` makes that ok.
unsafe impl<'a, T: Send> Sync for SliceParMut<'a, T> {}

impl<'a, T: Send + 'a> ParallelSource for SliceParMut<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.len
    }

    fn item(&self, i: usize) -> Self::Item {
        assert!(i < self.len);
        // SAFETY: i < len, and the drive contract guarantees each index is
        // produced at most once, so no two `&mut` borrows overlap.
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Types constructible from a parallel iterator (only `Vec` is needed).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the collection by draining the iterator.
    fn from_par_iter<S>(source: S) -> Self
    where
        S: ParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<S>(source: S) -> Self
    where
        S: ParallelIterator<Item = T>,
    {
        drive_collect(&source)
    }
}

/// Send/Sync wrapper for the output-slot pointer used by `drive_collect`.
struct SlotsPtr<T>(*mut Option<T>);

// SAFETY: workers write disjoint slots (each index claimed once via
// fetch_add) and the scope joins before the vector is read.
unsafe impl<T: Send> Send for SlotsPtr<T> {}
unsafe impl<T: Send> Sync for SlotsPtr<T> {}

fn worker_count(n: usize) -> usize {
    current_num_threads().max(1).min(n)
}

/// Evaluate every item in parallel, preserving source order in the output.
pub(crate) fn drive_collect<S: ParallelSource>(src: &S) -> Vec<S::Item> {
    let n = src.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return (0..n).map(|i| src.item(i)).collect();
    }
    let mut slots: Vec<Option<S::Item>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let out = SlotsPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        let out = &out;
        let next = &next;
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = src.item(i);
                // SAFETY: slot i is written exactly once (index claimed via
                // fetch_add) and the Vec outlives the scope.
                unsafe {
                    *out.0.add(i) = Some(value);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("parallel drive filled every slot"))
        .collect()
}

/// Evaluate every item in parallel, discarding results.
pub(crate) fn drive_discard<S: ParallelSource>(src: &S) {
    let n = src.len();
    let workers = worker_count(n);
    if workers <= 1 {
        for i in 0..n {
            src.item(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let next = &next;
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                src.item(i);
            });
        }
    });
}
