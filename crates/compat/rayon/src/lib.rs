//! Local API-compatible stand-in for the `rayon` crate.
//!
//! Provides genuinely parallel `par_iter()` / `into_par_iter()` pipelines
//! over slices and `Range<usize>` using `std::thread::scope`, plus a
//! `ThreadPoolBuilder` / `ThreadPool::install` pair that scopes the worker
//! count via a thread-local override (mirroring how this workspace uses
//! rayon pools: only to pin the thread count for a closure).
//!
//! Order is preserved: `collect::<Vec<_>>()` yields results in source
//! order, exactly like rayon's indexed parallel iterators.

pub mod iter;
mod pool;

pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

/// The rayon prelude: import the parallel-iterator traits.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        let expect: Vec<usize> = (0..1000).map(|i| i * 2).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![1.0f64, 2.0, 3.0, 4.0];
        let squared: Vec<f64> = data.par_iter().map(|x| x * x).collect();
        assert_eq!(squared, vec![1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    fn sum_and_for_each() {
        let total: usize = (0..100usize).into_par_iter().map(|i| i).sum();
        assert_eq!(total, 4950);
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0..64usize).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn pool_install_pins_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let inside = pool.install(crate::current_num_threads);
        assert_eq!(inside, 3);
    }

    #[test]
    fn single_thread_pool_still_completes() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let v: Vec<usize> = pool.install(|| (0..10).into_par_iter().map(|i| i + 1).collect());
        assert_eq!(v, (1..11).collect::<Vec<_>>());
    }
}
