//! Thread pools: in this stand-in, a "pool" is just a scoped override of
//! the worker count consulted by the drive loop in `iter.rs`. Worker
//! threads themselves are spawned per drive via `std::thread::scope`.

use std::cell::Cell;
use std::fmt;

thread_local! {
    /// 0 = no override (use available parallelism).
    static NUM_THREADS_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads parallel drives on this thread will use.
pub fn current_num_threads() -> usize {
    let overridden = NUM_THREADS_OVERRIDE.with(|c| c.get());
    if overridden > 0 {
        overridden
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Error building a thread pool (never produced by this stand-in, but the
/// type is part of the API surface).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    _private: (),
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool with the default (auto) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the worker count; 0 means auto.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Finish building. Infallible here, but returns `Result` to match
    /// the real API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle that scopes the worker count for closures run via `install`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

struct OverrideGuard {
    prev: usize,
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        NUM_THREADS_OVERRIDE.with(|c| c.set(self.prev));
    }
}

impl ThreadPool {
    /// Run `op` with this pool's thread count in effect for parallel
    /// drives started on the current thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let effective = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        let prev = NUM_THREADS_OVERRIDE.with(|c| {
            let prev = c.get();
            c.set(effective);
            prev
        });
        let _guard = OverrideGuard { prev };
        op()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        }
    }
}
