//! Collection strategies: `collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Length specification accepted by [`vec()`](fn@vec): a fixed `usize` or a range.
pub trait SizeRange {
    /// Draw a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length comes from `size`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S, impl SizeRange> {
    VecStrategy { element, size }
}

/// See [`vec()`](fn@vec).
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
