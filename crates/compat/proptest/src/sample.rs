//! Sampling strategies: `sample::select`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt;

/// Strategy choosing uniformly among the given values.
pub fn select<T: Clone + fmt::Debug>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select requires at least one item");
    Select { items }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone + fmt::Debug> {
    items: Vec<T>,
}

impl<T: Clone + fmt::Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.items.len());
        self.items[i].clone()
    }
}
