//! Test RNG plumbing: one deterministic generator per test, seeded from
//! the test's fully qualified name.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hash::{Hash, Hasher};

/// The RNG handed to strategies (the stand-in `StdRng`).
pub type TestRng = StdRng;

/// Deterministic RNG for the named test: same name, same case stream,
/// across runs and machines.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    // DefaultHasher::new() is specified to be deterministic (unkeyed);
    // combining with a fixed salt decorrelates nearby test names.
    0xBEEF_CAFEu64.hash(&mut hasher);
    test_name.hash(&mut hasher);
    StdRng::seed_from_u64(hasher.finish())
}
