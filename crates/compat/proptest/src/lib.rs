//! Local API-compatible stand-in for `proptest` (offline build).
//!
//! Implements the subset of the proptest API this workspace uses:
//! the `proptest!` macro (expanding to a deterministic multi-case test
//! loop), the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter`, ranges / tuples / [`Just`] as strategies,
//! `collection::vec`, `sample::select`, the `prop_assert*` macros, and
//! `prop_assume!`.
//!
//! Differences from the real crate (accepted here): no shrinking — a
//! failing case panics with the generated values in the assert message —
//! and the per-test RNG is seeded from the test's module path + name, so
//! runs are deterministic but case streams differ from upstream.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Retry budget for `prop_filter` / `prop_assume` rejections, per case.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 1024,
        }
    }
}

/// The proptest prelude.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a property test. Like real proptest, this early-returns
/// an `Err` from the case body (which the harness turns into a panic
/// reporting the generated inputs); test bodies may therefore also use
/// `return Ok(())` and `?`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    }};
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    }};
}

/// Skip the current case when `cond` is false (the case still counts
/// toward the configured total, unlike real proptest's global reject
/// budget — acceptable for the rejection rates in this workspace).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Property-test entry point: wraps `#[test]` functions whose arguments
/// are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { @config($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (@config($config:expr) $( $(#[$attr:meta])* fn $name:ident ( $($arg_pat:pat in $arg_strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::rng_for(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..config.cases {
                    let mut __inputs = ::std::string::String::new();
                    $(
                        let __generated = $crate::Strategy::generate(&($arg_strat), &mut rng);
                        __inputs.push_str(&format!(
                            "\n  {} = {:?}",
                            stringify!($arg_pat),
                            &__generated
                        ));
                        let $arg_pat = __generated;
                    )+
                    let __result: ::core::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(__message) = __result {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:{}",
                            __case + 1,
                            config.cases,
                            __message,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]
        #[test]
        fn ranges_and_tuples((a, b) in (0u64..100, 1usize..=4), x in -1.0f64..1.0) {
            prop_assert!(a < 100);
            prop_assert!((1..=4).contains(&b));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn map_filter_flat_map(v in (2usize..6).prop_flat_map(|n| {
            crate::collection::vec((0i32..10).prop_map(|x| x * 2), n)
        }).prop_filter("nonempty", |v| !v.is_empty())) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }

        #[test]
        fn select_picks_members(x in crate::sample::select(vec![2usize, 3, 5, 7])) {
            prop_assert!([2, 3, 5, 7].contains(&x));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::rng_for("some::test");
        let mut b = crate::test_runner::rng_for("some::test");
        let sa = crate::Strategy::generate(&(0u64..1_000_000), &mut a);
        let sb = crate::Strategy::generate(&(0u64..1_000_000), &mut b);
        assert_eq!(sa, sb);
    }
}
