//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use rand::distributions::uniform::SampleRange;
use rand::Rng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws one concrete value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Reject generated values failing `pred`, regenerating (bounded
    /// retries; panics if the filter rejects essentially everything).
    fn prop_filter<R, F>(self, whence: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Map-and-filter in one step: regenerate while `f` returns `None`.
    fn prop_filter_map<R, O, F>(self, whence: R, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        O: fmt::Debug,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            base: self,
            whence: whence.into(),
            f,
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let derived = (self.f)(self.base.generate(rng));
        derived.generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let candidate = self.base.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1024 consecutive candidates",
            self.whence
        );
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    base: S,
    whence: String,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..1024 {
            if let Some(value) = (self.f)(self.base.generate(rng)) {
                return value;
            }
        }
        panic!(
            "prop_filter_map '{}' rejected 1024 consecutive candidates",
            self.whence
        );
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `bool` strategy: fair coin.
impl Strategy for fn(&mut TestRng) -> bool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        self(rng)
    }
}

/// Free-function strategies returning `impl Strategy` compose fine; this
/// impl additionally lets plain closures over `TestRng` act as strategies.
pub struct FromFn<F>(pub F);

impl<F, T> Strategy for FromFn<F>
where
    F: Fn(&mut TestRng) -> T,
    T: fmt::Debug,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Sample any value of a type from its natural distribution — a tiny
/// `any::<T>()` analogue for the few primitive types that need it.
pub fn any_f64() -> impl Strategy<Value = f64> {
    FromFn(|rng: &mut TestRng| rng.gen::<f64>() * 2.0 - 1.0)
}
