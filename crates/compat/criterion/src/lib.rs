//! Local API-compatible stand-in for `criterion` (offline build).
//!
//! Measures mean wall-clock time per iteration with a short warm-up and a
//! fixed measurement budget, printing one `name ... time: [mean]` line per
//! benchmark. No statistical analysis, plots, or baselines — enough to
//! compare kernels by eye and to keep `cargo bench` compiling and running.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (std's hint).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for a parameterized benchmark: `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id rendered as `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Build an id from only a parameter (used inside groups).
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Anything acceptable as a benchmark label.
pub trait IntoBenchmarkLabel {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.id
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
    /// Total iterations executed during measurement.
    iters: u64,
    measurement_budget: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record its mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: at least 5 calls or 10 ms, whichever is longer.
        let warmup_start = Instant::now();
        let mut warmup_calls = 0u64;
        while warmup_calls < 5 || warmup_start.elapsed() < Duration::from_millis(10) {
            black_box(routine());
            warmup_calls += 1;
            if warmup_calls >= 1_000_000 {
                break;
            }
        }
        let per_call = warmup_start.elapsed().as_secs_f64() / warmup_calls as f64;

        // Measurement: size batches so total stays within the budget.
        let budget = self.measurement_budget.as_secs_f64();
        let target_iters = (budget / per_call.max(1e-9)).clamp(5.0, 5_000_000.0) as u64;
        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.iters = target_iters;
        self.mean_ns = elapsed.as_nanos() as f64 / target_iters as f64;
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(label: &str, measurement_budget: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        mean_ns: 0.0,
        iters: 0,
        measurement_budget,
    };
    f(&mut bencher);
    let t = format_time(bencher.mean_ns);
    println!(
        "{label:<50} time: [{t} {t} {t}]  ({} iterations)",
        bencher.iters
    );
}

/// A named group of related benchmarks. Holds the criterion borrow for
/// API parity (one open group at a time), though this stand-in keeps no
/// state there.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
    measurement_budget: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the nominal sample count. This stand-in maps it onto the
    /// measurement budget (more samples, longer measurement).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let ms = (n as u64).clamp(10, 100) * 2;
        self.measurement_budget = Duration::from_millis(ms);
        self
    }

    /// Set the measurement time directly.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_budget = d;
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut f = f;
        run_one(&label, self.measurement_budget, |b| f(b));
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut f = f;
        run_one(&label, self.measurement_budget, |b| f(b, input));
        self
    }

    /// Finish the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: std::marker::PhantomData,
            measurement_budget: Duration::from_millis(100),
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_one(name, Duration::from_millis(100), |b| f(b));
        self
    }
}

/// Group several `fn(&mut Criterion)` targets into one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("compat");
        group.sample_size(10);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(12.3).contains("ns"));
        assert!(format_time(12_300.0).contains("µs"));
        assert!(format_time(12_300_000.0).contains("ms"));
        assert!(format_time(2_000_000_000.0).ends_with(" s"));
    }
}
