//! Gradient-direction sampling schemes.
//!
//! DW-MRI acquires one measurement per gradient direction; fitting an
//! order-`m` symmetric tensor in 3D needs at least `C(m+2, m)` of them
//! (15 for `m = 4`, 28 for `m = 6`, 45 for `m = 8` — the counts quoted in
//! Section IV). Real protocols use directions spread by electrostatic
//! repulsion; the Fibonacci sphere is an equally-good deterministic spread.

use crate::fiber::Dir3;
use symtensor::multinomial::num_unique_entries;

/// Minimum number of measurements to determine an order-`m` tensor in 3D:
/// the number of unique entries `C(m+2, m)`.
pub fn min_measurements(m: usize) -> usize {
    num_unique_entries(m, 3) as usize
}

/// `count` gradient directions spread over the sphere by the Fibonacci
/// lattice (deterministic, near-uniform).
pub fn gradient_directions(count: usize) -> Vec<Dir3> {
    assert!(count > 0);
    let golden = (1.0 + 5.0f64.sqrt()) / 2.0;
    (0..count)
        .map(|i| {
            let z = 1.0 - (2.0 * i as f64 + 1.0) / count as f64;
            let r = (1.0 - z * z).max(0.0).sqrt();
            let theta = 2.0 * std::f64::consts::PI * (i as f64 / golden).fract();
            [r * theta.cos(), r * theta.sin(), z]
        })
        .collect()
}

/// A standard protocol: the minimum count for order `m` plus 50% headroom
/// (noise averaging), as real protocols over-sample.
pub fn standard_protocol(m: usize) -> Vec<Dir3> {
    gradient_directions(min_measurements(m) * 3 / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_counts_match_paper_section_4() {
        // "m = 4, m = 6, and m = 8 require at least 15, 28, and 45
        // measurements respectively."
        assert_eq!(min_measurements(4), 15);
        assert_eq!(min_measurements(6), 28);
        assert_eq!(min_measurements(8), 45);
        // The 2nd-order series has 6 terms.
        assert_eq!(min_measurements(2), 6);
    }

    #[test]
    fn directions_are_unit() {
        for g in gradient_directions(64) {
            let n = (g[0] * g[0] + g[1] * g[1] + g[2] * g[2]).sqrt();
            assert!((n - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn standard_protocol_oversamples() {
        assert!(standard_protocol(4).len() >= min_measurements(4));
        assert_eq!(standard_protocol(4).len(), 22);
    }

    #[test]
    fn directions_are_spread() {
        // No two of 32 directions should be nearly identical.
        let dirs = gradient_directions(32);
        for i in 0..dirs.len() {
            for j in i + 1..dirs.len() {
                let dot: f64 = dirs[i].iter().zip(&dirs[j]).map(|(a, b)| a * b).sum();
                assert!(dot < 0.999, "directions {i} and {j} coincide");
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_count_panics() {
        gradient_directions(0);
    }
}
