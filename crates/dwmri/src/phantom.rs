//! The synthetic voxel grid: our stand-in for the Utah SCI test set.
//!
//! The paper's set: 1024 order-4, dimension-3 tensors on a 2D voxel grid,
//! some voxels with one fiber direction and some with two. This phantom
//! reproduces that structure on a 32×32 grid split into regions:
//!
//! * a **single-fiber field** whose orientation rotates smoothly across
//!   the region (like a bending tract);
//! * a **crossing region** where a second tract passes through at
//!   60–90°;
//! * measurement noise at a configurable level.
//!
//! Each voxel's tensor comes from the full acquisition pipeline:
//! ADC model → gradient sampling → least-squares fit.

use crate::adc::{adc, Diffusivities};
use crate::fiber::FiberConfig;
use crate::fit::fit_tensor;
use crate::noise::NoiseModel;
use crate::sampling::gradient_directions;
use rand::Rng;
use rayon::prelude::*;
use symtensor::{SymTensor, TensorBatch};

/// Phantom generation parameters.
#[derive(Debug, Clone)]
pub struct PhantomConfig {
    /// Grid width (voxels).
    pub width: usize,
    /// Grid height (voxels).
    pub height: usize,
    /// Tensor order (even; the paper uses 4).
    pub order: usize,
    /// Number of gradient directions in the acquisition.
    pub num_gradients: usize,
    /// Measurement-noise model applied to each ADC sample.
    pub noise: NoiseModel,
    /// Per-fiber diffusivities.
    pub diffusivities: Diffusivities,
    /// Crossing angle in the two-fiber region, radians.
    pub crossing_angle: f64,
}

impl Default for PhantomConfig {
    fn default() -> Self {
        Self {
            width: 32,
            height: 32,
            order: 4,
            num_gradients: 30,
            noise: NoiseModel::None,
            diffusivities: Diffusivities::default(),
            crossing_angle: 75.0f64.to_radians(),
        }
    }
}

/// One voxel: ground truth plus the fitted tensor.
#[derive(Debug, Clone)]
pub struct Voxel {
    /// Grid coordinates.
    pub x: usize,
    /// Grid coordinates.
    pub y: usize,
    /// Ground-truth fiber content.
    pub truth: FiberConfig,
    /// The tensor fitted from the (noisy) synthetic measurements.
    pub tensor: SymTensor<f64>,
}

/// The generated phantom.
#[derive(Debug, Clone)]
pub struct Phantom {
    /// Generation parameters.
    pub config: PhantomConfig,
    /// Voxels in row-major order (`y * width + x`).
    pub voxels: Vec<Voxel>,
}

impl Phantom {
    /// Generate the phantom. Voxel fits run in parallel.
    ///
    /// The lower-left/"background" region carries a single tract whose
    /// in-plane angle varies smoothly with position; voxels inside the
    /// central band additionally carry a second tract at
    /// `config.crossing_angle`, making them two-fiber voxels.
    pub fn generate<R: Rng>(config: PhantomConfig, rng: &mut R) -> Phantom {
        assert!(config.order.is_multiple_of(2), "tensor order must be even");
        let dirs = gradient_directions(config.num_gradients);
        // Pre-draw per-voxel noise seeds so generation parallelizes
        // deterministically given the caller's RNG.
        let noise_seeds: Vec<u64> = (0..config.width * config.height)
            .map(|_| rng.gen())
            .collect();

        let voxels: Vec<Voxel> = (0..config.width * config.height)
            .into_par_iter()
            .map(|idx| {
                let x = idx % config.width;
                let y = idx / config.width;
                let truth = Self::truth_for(&config, x, y);
                let mut local = rand_pcg(noise_seeds[idx]);
                let vals: Vec<f64> = dirs
                    .iter()
                    .map(|g| {
                        let clean = adc(&truth, &config.diffusivities, g);
                        config.noise.apply(clean, local(), local())
                    })
                    .collect();
                let tensor = fit_tensor(config.order, &dirs, &vals)
                    .expect("phantom design matrix is well conditioned");
                Voxel {
                    x,
                    y,
                    truth,
                    tensor,
                }
            })
            .collect();
        Phantom { config, voxels }
    }

    /// Ground-truth fiber content of voxel `(x, y)`.
    fn truth_for(config: &PhantomConfig, x: usize, y: usize) -> FiberConfig {
        let fx = x as f64 / config.width.max(1) as f64;
        let fy = y as f64 / config.height.max(1) as f64;
        // Primary tract: gently bending in-plane orientation.
        let theta = 0.4 * (fx - 0.5) + 0.25 * (fy - 0.5);
        // Central horizontal band hosts the crossing tract.
        let in_crossing_band = (0.375..0.625).contains(&fy);
        if in_crossing_band {
            let phi = theta + config.crossing_angle;
            FiberConfig::new(
                vec![[theta.cos(), theta.sin(), 0.0], [phi.cos(), phi.sin(), 0.0]],
                vec![0.5, 0.5],
            )
        } else {
            FiberConfig::single([theta.cos(), theta.sin(), 0.0])
        }
    }

    /// Number of voxels.
    pub fn len(&self) -> usize {
        self.voxels.len()
    }

    /// True if the phantom has no voxels.
    pub fn is_empty(&self) -> bool {
        self.voxels.is_empty()
    }

    /// The fitted tensors packed into one contiguous [`TensorBatch`]
    /// arena, in row-major voxel order — the batch-solver input shape.
    /// Each voxel's 15 packed entries (at the paper shape) are written
    /// straight into the arena; no per-voxel `SymTensor` is allocated.
    pub fn tensor_batch(&self) -> TensorBatch<f64> {
        let mut batch = TensorBatch::with_capacity(self.config.order, 3, self.len())
            .expect("phantom orders are valid tensor shapes");
        for v in &self.voxels {
            batch
                .push_values(v.tensor.values())
                .expect("voxel fits share the phantom shape");
        }
        batch
    }

    /// [`Self::tensor_batch`] converted to `f32` (the precision the
    /// paper's GPU benchmarks use).
    pub fn tensor_batch_f32(&self) -> TensorBatch<f32> {
        let mut batch = TensorBatch::with_capacity(self.config.order, 3, self.len())
            .expect("phantom orders are valid tensor shapes");
        for v in &self.voxels {
            let vals: Vec<f32> = v.tensor.values().iter().map(|&x| x as f32).collect();
            batch
                .push_values(&vals)
                .expect("voxel fits share the phantom shape");
        }
        batch
    }

    /// Count of voxels with the given number of true fibers.
    pub fn count_with_fibers(&self, k: usize) -> usize {
        self.voxels
            .iter()
            .filter(|v| v.truth.num_fibers() == k)
            .count()
    }
}

/// A tiny deterministic PCG32 so each voxel gets reproducible noise from a
/// single seed without threading `rand` state through rayon.
fn rand_pcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
        let rot = (state >> 59) as u32;
        let out = xorshifted.rotate_right(rot);
        out as f64 / u32::MAX as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> PhantomConfig {
        PhantomConfig {
            width: 8,
            height: 8,
            ..Default::default()
        }
    }

    #[test]
    fn paper_sized_phantom_has_1024_voxels() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Phantom::generate(PhantomConfig::default(), &mut rng);
        assert_eq!(p.len(), 1024);
        assert!(!p.is_empty());
        // Mix of one- and two-fiber voxels, as in the Utah set.
        assert!(p.count_with_fibers(1) > 0);
        assert!(p.count_with_fibers(2) > 0);
        assert_eq!(p.count_with_fibers(1) + p.count_with_fibers(2), 1024);
    }

    #[test]
    fn tensors_have_paper_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = Phantom::generate(small_config(), &mut rng);
        for v in &p.voxels {
            assert_eq!(v.tensor.order(), 4);
            assert_eq!(v.tensor.dim(), 3);
            assert_eq!(v.tensor.num_unique(), 15);
        }
        let t32 = p.tensor_batch_f32();
        assert_eq!(t32.len(), 64);
        assert_eq!((t32.order(), t32.dim(), t32.stride()), (4, 3, 15));
        let batch = p.tensor_batch();
        assert_eq!(batch.len(), 64);
        for (view, v) in batch.iter().zip(&p.voxels) {
            assert_eq!(view.values(), v.tensor.values());
        }
    }

    #[test]
    fn crossing_band_voxels_have_two_fibers() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = Phantom::generate(small_config(), &mut rng);
        // y in [3, 4] of 8 → fy in [0.375, 0.625).
        for v in &p.voxels {
            let fy = v.y as f64 / 8.0;
            let expected = if (0.375..0.625).contains(&fy) { 2 } else { 1 };
            assert_eq!(v.truth.num_fibers(), expected, "voxel ({}, {})", v.x, v.y);
        }
    }

    #[test]
    fn noiseless_fit_reproduces_adc() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = Phantom::generate(small_config(), &mut rng);
        let dirs = gradient_directions(11);
        for v in p.voxels.iter().step_by(13) {
            for g in &dirs {
                let want = adc(&v.truth, &p.config.diffusivities, g);
                let got = crate::fit::evaluate(&v.tensor, g);
                assert!((got - want).abs() < 1e-7, "voxel ({}, {})", v.x, v.y);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let cfg = PhantomConfig {
            noise: NoiseModel::Multiplicative { amplitude: 0.05 },
            ..small_config()
        };
        let p1 = Phantom::generate(cfg.clone(), &mut rng1);
        let p2 = Phantom::generate(cfg, &mut rng2);
        for (a, b) in p1.voxels.iter().zip(&p2.voxels) {
            assert_eq!(a.tensor.values(), b.tensor.values());
        }
    }

    #[test]
    fn noise_perturbs_but_does_not_destroy() {
        let mut rng = StdRng::seed_from_u64(6);
        let clean = Phantom::generate(small_config(), &mut rng);
        let mut rng = StdRng::seed_from_u64(6);
        let noisy = Phantom::generate(
            PhantomConfig {
                noise: NoiseModel::Multiplicative { amplitude: 0.05 },
                ..small_config()
            },
            &mut rng,
        );
        let mut any_diff = false;
        for (a, b) in clean.voxels.iter().zip(&noisy.voxels) {
            let d = a.tensor.max_abs_diff(&b.tensor).unwrap();
            if d > 1e-12 {
                any_diff = true;
            }
            assert!(d < 0.5, "noise should be a perturbation, got {d}");
        }
        assert!(any_diff);
    }

    #[test]
    #[should_panic]
    fn odd_order_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        Phantom::generate(
            PhantomConfig {
                order: 3,
                ..small_config()
            },
            &mut rng,
        );
    }
}
