//! Measurement-noise models for the synthetic acquisition.
//!
//! DW-MRI doesn't measure the ADC directly: it measures the magnitude of a
//! complex signal `S(g) = S₀·exp(−b·D(g))` corrupted by complex Gaussian
//! receiver noise, so the observed magnitude follows a **Rician**
//! distribution and the derived ADC `D̂ = −ln(Ŝ/S₀)/b` inherits a
//! signal-level-dependent bias. The phantom supports three models:
//!
//! * [`NoiseModel::None`] — the clean profile;
//! * [`NoiseModel::Multiplicative`] — simple relative jitter on the ADC,
//!   convenient for controlled robustness sweeps;
//! * [`NoiseModel::Rician`] — the physical model: complex Gaussian noise of
//!   standard deviation `sigma` (relative to `S₀ = 1`) added to the
//!   attenuated signal at b-value `b`, magnitude taken, ADC re-derived.

/// How to corrupt a clean ADC value.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum NoiseModel {
    /// No noise.
    #[default]
    None,
    /// `D̂ = D · (1 + amplitude·u)`, `u` uniform on `[−1, 1]`.
    Multiplicative {
        /// Relative amplitude (e.g. `0.02` for ±2%).
        amplitude: f64,
    },
    /// Rician magnitude noise on the attenuated signal.
    Rician {
        /// Noise standard deviation relative to the unattenuated signal
        /// `S₀ = 1` (so SNR₀ = 1/sigma).
        sigma: f64,
        /// The diffusion weighting `b` (same units as `1/D`; with this
        /// crate's scaled diffusivities, `b ≈ 1.0–1.5` matches clinical
        /// b≈1000–1500 s/mm²).
        b: f64,
    },
}

impl NoiseModel {
    /// Apply the model to a clean ADC value. `u1`, `u2` are i.i.d. uniform
    /// samples in `[0, 1)` supplied by the caller (keeps this module free
    /// of RNG plumbing and deterministic under any sampler).
    pub fn apply(&self, clean_adc: f64, u1: f64, u2: f64) -> f64 {
        match *self {
            NoiseModel::None => clean_adc,
            NoiseModel::Multiplicative { amplitude } => {
                clean_adc * (1.0 + amplitude * (2.0 * u1 - 1.0))
            }
            NoiseModel::Rician { sigma, b } => {
                let s = (-b * clean_adc).exp();
                let (g1, g2) = box_muller(u1, u2);
                let re = s + sigma * g1;
                let im = sigma * g2;
                let magnitude = (re * re + im * im).sqrt().max(1e-12);
                -magnitude.ln() / b
            }
        }
    }
}

/// Two independent standard normals from two uniforms.
fn box_muller(u1: f64, u2: f64) -> (f64, f64) {
    let r = (-2.0 * u1.max(1e-300).ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        assert_eq!(NoiseModel::None.apply(1.23, 0.5, 0.5), 1.23);
    }

    #[test]
    fn multiplicative_bounds() {
        let m = NoiseModel::Multiplicative { amplitude: 0.1 };
        for u in [0.0, 0.25, 0.5, 0.75, 0.999] {
            let v = m.apply(2.0, u, 0.0);
            assert!((1.8..=2.2).contains(&v), "{v}");
        }
        // u = 0.5 is the midpoint: no perturbation.
        assert!((m.apply(2.0, 0.5, 0.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rician_zero_sigma_is_identity() {
        let m = NoiseModel::Rician { sigma: 0.0, b: 1.5 };
        for d in [0.3, 1.0, 1.7] {
            assert!((m.apply(d, 0.7, 0.3) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn rician_is_unbiased_at_high_snr() {
        // Average over many samples: small sigma recovers the clean ADC.
        let m = NoiseModel::Rician {
            sigma: 0.005,
            b: 1.5,
        };
        let clean = 1.0;
        let mut lcg = 12345u64;
        let mut uniform = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            (lcg >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| m.apply(clean, uniform(), uniform()))
            .sum::<f64>()
            / n as f64;
        assert!((mean - clean).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn rician_biases_high_adc_downward_at_low_snr() {
        // When the attenuated signal sinks toward the noise floor, the
        // magnitude operation inflates the measured signal, deflating the
        // measured ADC: the classical Rician ADC bias.
        let m = NoiseModel::Rician { sigma: 0.2, b: 3.0 };
        let clean = 1.7; // exp(-5.1) ~ 0.006 << sigma
        let mut lcg = 999u64;
        let mut uniform = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            (lcg >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| m.apply(clean, uniform(), uniform()))
            .sum::<f64>()
            / n as f64;
        assert!(
            mean < clean - 0.3,
            "expected strong downward bias, got mean {mean} vs clean {clean}"
        );
    }

    #[test]
    fn box_muller_moments() {
        let mut lcg = 7u64;
        let mut uniform = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            (lcg >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let (g, _) = box_muller(uniform(), uniform());
            sum += g;
            sum2 += g * g;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
