//! Streamline tractography over a fiber-direction field.
//!
//! The point of resolving per-voxel fiber directions (the whole pipeline of
//! this crate) is to connect them into tracts. This module implements
//! deterministic fixed-step streamline tracking over the phantom's 2D
//! voxel grid:
//!
//! * at each step, look up the current voxel's extracted [`FiberEstimate`]s
//!   and follow the axis **best aligned with the incoming heading** — this
//!   is what lets tracking run straight *through* a crossing instead of
//!   veering onto the other tract (the clinical reason crossings must be
//!   resolved, Section IV of the paper);
//! * stop on leaving the grid, exceeding the turning threshold, entering a
//!   voxel with no fibers, or reaching the step cap.

use crate::extract::FiberEstimate;
use crate::fiber::Dir3;

/// Tracking parameters.
#[derive(Debug, Clone)]
pub struct TractConfig {
    /// Step length in voxel units.
    pub step: f64,
    /// Stop if the best-aligned fiber deviates from the heading by more
    /// than this many degrees.
    pub max_turn_deg: f64,
    /// Hard cap on steps per direction.
    pub max_steps: usize,
}

impl Default for TractConfig {
    fn default() -> Self {
        Self {
            step: 0.5,
            max_turn_deg: 45.0,
            max_steps: 1000,
        }
    }
}

/// Why a streamline stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Left the grid.
    LeftGrid,
    /// Turn angle exceeded the threshold.
    SharpTurn,
    /// Entered a voxel with no fiber estimates.
    NoFibers,
    /// Step cap reached.
    MaxSteps,
}

/// A traced streamline.
#[derive(Debug, Clone)]
pub struct Streamline {
    /// Points in voxel coordinates (x, y), in travel order, seed included.
    pub points: Vec<(f64, f64)>,
    /// Why tracking stopped (forward direction).
    pub stop_forward: StopReason,
    /// Why tracking stopped (backward direction).
    pub stop_backward: StopReason,
}

impl Streamline {
    /// Arc length in voxel units.
    pub fn length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let dx = w[1].0 - w[0].0;
                let dy = w[1].1 - w[0].1;
                (dx * dx + dy * dy).sqrt()
            })
            .sum()
    }
}

/// A field of per-voxel fiber estimates on a `width × height` grid
/// (row-major, like [`crate::Phantom`]'s voxels).
#[derive(Debug, Clone)]
pub struct FiberField {
    width: usize,
    height: usize,
    fibers: Vec<Vec<FiberEstimate>>,
}

impl FiberField {
    /// Build a field from per-voxel estimates (row-major,
    /// `len == width*height`).
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn new(width: usize, height: usize, fibers: Vec<Vec<FiberEstimate>>) -> Self {
        assert_eq!(fibers.len(), width * height, "one entry per voxel");
        Self {
            width,
            height,
            fibers,
        }
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The estimates of the voxel containing `(x, y)`, or `None` outside
    /// the grid.
    pub fn at(&self, x: f64, y: f64) -> Option<&[FiberEstimate]> {
        if x < 0.0 || y < 0.0 {
            return None;
        }
        let (xi, yi) = (x.floor() as usize, y.floor() as usize);
        if xi >= self.width || yi >= self.height {
            return None;
        }
        Some(&self.fibers[yi * self.width + xi])
    }

    /// Among the voxel's fibers, the axis best aligned with `heading`
    /// (sign-corrected to point along the heading), with its deviation in
    /// degrees.
    fn best_aligned(&self, x: f64, y: f64, heading: &Dir3) -> Option<(Dir3, f64)> {
        let fibers = self.at(x, y)?;
        let mut best: Option<(Dir3, f64)> = None;
        for f in fibers {
            let dot: f64 = f
                .direction
                .iter()
                .zip(heading.iter())
                .map(|(a, b)| a * b)
                .sum();
            let aligned = if dot >= 0.0 {
                f.direction
            } else {
                [-f.direction[0], -f.direction[1], -f.direction[2]]
            };
            let dev = dot.abs().clamp(0.0, 1.0).acos().to_degrees();
            if best.as_ref().is_none_or(|(_, b)| dev < *b) {
                best = Some((aligned, dev));
            }
        }
        best
    }
}

/// Trace one direction from a seed. Returns the points *after* the seed.
fn trace_one_way(
    field: &FiberField,
    seed: (f64, f64),
    mut heading: Dir3,
    cfg: &TractConfig,
) -> (Vec<(f64, f64)>, StopReason) {
    let mut points = Vec::new();
    let (mut x, mut y) = seed;
    for _ in 0..cfg.max_steps {
        let Some(fibers) = field.at(x, y) else {
            return (points, StopReason::LeftGrid);
        };
        if fibers.is_empty() {
            return (points, StopReason::NoFibers);
        }
        let Some((dir, dev)) = field.best_aligned(x, y, &heading) else {
            return (points, StopReason::NoFibers);
        };
        if dev > cfg.max_turn_deg {
            return (points, StopReason::SharpTurn);
        }
        x += cfg.step * dir[0];
        y += cfg.step * dir[1];
        heading = dir;
        if field.at(x, y).is_none() {
            return (points, StopReason::LeftGrid);
        }
        points.push((x, y));
    }
    (points, StopReason::MaxSteps)
}

/// Trace a full streamline through `seed`, following the seed voxel's
/// strongest fiber both ways. Returns `None` if the seed voxel is outside
/// the grid or has no fibers.
pub fn trace(field: &FiberField, seed: (f64, f64), cfg: &TractConfig) -> Option<Streamline> {
    let fibers = field.at(seed.0, seed.1)?;
    let strongest = fibers.first()?;
    let dir = strongest.direction;

    let (fwd, stop_forward) = trace_one_way(field, seed, dir, cfg);
    let (bwd, stop_backward) = trace_one_way(field, seed, [-dir[0], -dir[1], -dir[2]], cfg);

    let mut points: Vec<(f64, f64)> = bwd.into_iter().rev().collect();
    points.push(seed);
    points.extend(fwd);
    Some(Streamline {
        points,
        stop_forward,
        stop_backward,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(d: Dir3) -> FiberEstimate {
        FiberEstimate {
            direction: d,
            lambda: 1.0,
            basin_fraction: 1.0,
        }
    }

    /// A uniform horizontal field.
    fn horizontal_field(w: usize, h: usize) -> FiberField {
        FiberField::new(w, h, vec![vec![est([1.0, 0.0, 0.0])]; w * h])
    }

    #[test]
    fn straight_field_traces_across_the_grid() {
        let field = horizontal_field(16, 4);
        let s = trace(&field, (8.0, 2.0), &TractConfig::default()).unwrap();
        assert_eq!(s.stop_forward, StopReason::LeftGrid);
        assert_eq!(s.stop_backward, StopReason::LeftGrid);
        // Crosses nearly the full 16-voxel width.
        assert!(s.length() > 13.0, "length {}", s.length());
        // All points stay on the horizontal line.
        for &(_, y) in &s.points {
            assert!((y - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn crossing_voxels_are_passed_straight_through() {
        // Horizontal field, but the middle column also carries a vertical
        // fiber (a crossing). Heading continuity must pick the horizontal
        // axis and pass through.
        let w = 11;
        let mut fibers = vec![vec![est([1.0, 0.0, 0.0])]; w * 3];
        for y in 0..3 {
            fibers[y * w + 5] = vec![est([0.0, 1.0, 0.0]), est([1.0, 0.0, 0.0])];
        }
        let field = FiberField::new(w, 3, fibers);
        let s = trace(&field, (1.2, 1.5), &TractConfig::default()).unwrap();
        assert_eq!(s.stop_forward, StopReason::LeftGrid);
        assert!(
            s.length() > 8.0,
            "must cross the crossing column: {}",
            s.length()
        );
        for &(_, y) in &s.points {
            assert!((y - 1.5).abs() < 1e-9, "streamline must stay horizontal");
        }
    }

    #[test]
    fn sharp_turn_stops_tracking() {
        // Left half horizontal, right half vertical: a 90-degree wall.
        let w = 10;
        let fibers: Vec<Vec<FiberEstimate>> = (0..w * 3)
            .map(|i| {
                let x = i % w;
                if x < 5 {
                    vec![est([1.0, 0.0, 0.0])]
                } else {
                    vec![est([0.0, 1.0, 0.0])]
                }
            })
            .collect();
        let field = FiberField::new(w, 3, fibers);
        let s = trace(&field, (1.0, 1.0), &TractConfig::default()).unwrap();
        assert_eq!(s.stop_forward, StopReason::SharpTurn);
    }

    #[test]
    fn empty_voxels_stop_tracking() {
        let w = 8;
        let fibers: Vec<Vec<FiberEstimate>> = (0..w)
            .map(|x| {
                if x < 4 {
                    vec![est([1.0, 0.0, 0.0])]
                } else {
                    vec![]
                }
            })
            .collect();
        let field = FiberField::new(w, 1, fibers);
        let s = trace(&field, (0.5, 0.5), &TractConfig::default()).unwrap();
        assert_eq!(s.stop_forward, StopReason::NoFibers);
    }

    #[test]
    fn seed_outside_grid_is_none() {
        let field = horizontal_field(4, 4);
        assert!(trace(&field, (-1.0, 0.0), &TractConfig::default()).is_none());
        assert!(trace(&field, (5.0, 0.0), &TractConfig::default()).is_none());
    }

    #[test]
    fn seed_in_empty_voxel_is_none() {
        let field = FiberField::new(1, 1, vec![vec![]]);
        assert!(trace(&field, (0.5, 0.5), &TractConfig::default()).is_none());
    }

    #[test]
    fn max_steps_honored() {
        let field = horizontal_field(1000, 1);
        let cfg = TractConfig {
            max_steps: 10,
            ..Default::default()
        };
        let s = trace(&field, (500.0, 0.5), &cfg).unwrap();
        assert_eq!(s.stop_forward, StopReason::MaxSteps);
        assert!(s.points.len() <= 21);
    }

    #[test]
    fn length_of_known_path() {
        let field = horizontal_field(6, 1);
        let cfg = TractConfig {
            step: 1.0,
            max_steps: 3,
            ..Default::default()
        };
        let s = trace(&field, (2.5, 0.5), &cfg).unwrap();
        // Forward: 3 unit steps (some may exit); backward likewise.
        assert!(s.length() >= 2.0);
    }
}
