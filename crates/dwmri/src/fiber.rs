//! Ground-truth fiber configurations for synthetic voxels.

use std::f64::consts::PI;

/// A unit direction in R³.
pub type Dir3 = [f64; 3];

/// Normalize a direction in place; panics on the zero vector.
pub fn normalize3(v: &mut Dir3) {
    let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    assert!(n > 0.0, "zero direction");
    v[0] /= n;
    v[1] /= n;
    v[2] /= n;
}

/// The fiber content of one voxel: up to a few fiber bundles, each with a
/// direction and a volume fraction (weights sum to 1).
#[derive(Debug, Clone, PartialEq)]
pub struct FiberConfig {
    /// Unit fiber directions.
    pub directions: Vec<Dir3>,
    /// Volume fractions, same length as `directions`, summing to 1.
    pub weights: Vec<f64>,
}

impl FiberConfig {
    /// A single fiber along `dir` (normalized internally).
    pub fn single(mut dir: Dir3) -> Self {
        normalize3(&mut dir);
        Self {
            directions: vec![dir],
            weights: vec![1.0],
        }
    }

    /// Two fibers with equal volume fractions.
    pub fn crossing(mut d1: Dir3, mut d2: Dir3) -> Self {
        normalize3(&mut d1);
        normalize3(&mut d2);
        Self {
            directions: vec![d1, d2],
            weights: vec![0.5, 0.5],
        }
    }

    /// Arbitrary configuration; weights are normalized to sum to 1.
    ///
    /// # Panics
    /// Panics if lengths differ, the list is empty, or all weights are 0.
    pub fn new(directions: Vec<Dir3>, mut weights: Vec<f64>) -> Self {
        assert_eq!(directions.len(), weights.len());
        assert!(!directions.is_empty());
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        for w in &mut weights {
            *w /= total;
        }
        let mut directions = directions;
        for d in &mut directions {
            normalize3(d);
        }
        Self {
            directions,
            weights,
        }
    }

    /// Number of fiber bundles in the voxel.
    pub fn num_fibers(&self) -> usize {
        self.directions.len()
    }

    /// A single fiber in the xy-plane at angle `theta` (radians) from +x.
    pub fn single_in_plane(theta: f64) -> Self {
        Self::single([theta.cos(), theta.sin(), 0.0])
    }

    /// Two fibers in the xy-plane crossing at `angle` (radians), placed
    /// symmetrically about the x-axis.
    pub fn crossing_at_angle(angle: f64) -> Self {
        let half = angle / 2.0;
        Self::crossing(
            [half.cos(), half.sin(), 0.0],
            [half.cos(), -half.sin(), 0.0],
        )
    }

    /// Smallest pairwise crossing angle in radians (`None` for single-fiber
    /// voxels). Antipodal-invariant: directions are axes, not arrows.
    pub fn min_crossing_angle(&self) -> Option<f64> {
        let k = self.directions.len();
        if k < 2 {
            return None;
        }
        let mut min = PI;
        for i in 0..k {
            for j in i + 1..k {
                let d: f64 = self.directions[i]
                    .iter()
                    .zip(&self.directions[j])
                    .map(|(a, b)| a * b)
                    .sum();
                min = min.min(d.abs().clamp(0.0, 1.0).acos());
            }
        }
        Some(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_normalized() {
        let f = FiberConfig::single([3.0, 0.0, 4.0]);
        assert!((f.directions[0][0] - 0.6).abs() < 1e-12);
        assert!((f.directions[0][2] - 0.8).abs() < 1e-12);
        assert_eq!(f.weights, vec![1.0]);
        assert_eq!(f.num_fibers(), 1);
        assert!(f.min_crossing_angle().is_none());
    }

    #[test]
    fn crossing_has_equal_weights() {
        let f = FiberConfig::crossing([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        assert_eq!(f.weights, vec![0.5, 0.5]);
        assert!((f.min_crossing_angle().unwrap() - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn new_normalizes_weights() {
        let f = FiberConfig::new(vec![[1.0, 0.0, 0.0], [0.0, 0.0, 2.0]], vec![2.0, 6.0]);
        assert!((f.weights[0] - 0.25).abs() < 1e-12);
        assert!((f.weights[1] - 0.75).abs() < 1e-12);
        assert!((f.directions[1][2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn crossing_at_angle_measures_back() {
        for deg in [30.0f64, 45.0, 60.0, 90.0] {
            let f = FiberConfig::crossing_at_angle(deg.to_radians());
            let got = f.min_crossing_angle().unwrap().to_degrees();
            assert!((got - deg).abs() < 1e-9, "{deg}: {got}");
        }
    }

    #[test]
    fn min_crossing_angle_is_antipodal_invariant() {
        let f1 = FiberConfig::crossing([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        let f2 = FiberConfig::crossing([-1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        assert!(
            (f1.min_crossing_angle().unwrap() - f2.min_crossing_angle().unwrap()).abs() < 1e-12
        );
    }

    #[test]
    fn single_in_plane_at_zero_is_x_axis() {
        let f = FiberConfig::single_in_plane(0.0);
        assert!((f.directions[0][0] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_direction_panics() {
        FiberConfig::single([0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn empty_config_panics() {
        FiberConfig::new(vec![], vec![]);
    }
}
