//! Scoring: angular errors and per-voxel detection outcomes.

use crate::extract::FiberEstimate;
use crate::fiber::{Dir3, FiberConfig};

/// Angular error between two axes in degrees, antipodally invariant
/// (an axis and its negation are the same fiber).
pub fn angular_error_deg(a: &Dir3, b: &Dir3) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(p, q)| p * q).sum();
    let na: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    let c = (dot / (na * nb)).abs().clamp(0.0, 1.0);
    c.acos().to_degrees()
}

/// Per-voxel comparison of estimated fibers against ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct VoxelScore {
    /// Ground-truth fiber count.
    pub true_count: usize,
    /// Estimated fiber count.
    pub found_count: usize,
    /// Greedy matching: angular error (deg) for each matched truth fiber.
    pub matched_errors_deg: Vec<f64>,
    /// Truth fibers with no estimate within the match threshold.
    pub missed: usize,
    /// Estimates not matched to any truth fiber.
    pub spurious: usize,
}

impl VoxelScore {
    /// A voxel counts as correctly resolved if every truth fiber is matched
    /// and there are no spurious detections.
    pub fn is_correct(&self) -> bool {
        self.missed == 0 && self.spurious == 0
    }

    /// Mean matched angular error (`None` if nothing matched).
    pub fn mean_error_deg(&self) -> Option<f64> {
        if self.matched_errors_deg.is_empty() {
            None
        } else {
            Some(self.matched_errors_deg.iter().sum::<f64>() / self.matched_errors_deg.len() as f64)
        }
    }
}

/// Score one voxel's estimates against its ground truth with a greedy
/// nearest-axis matching under `match_threshold_deg`.
pub fn score_voxel(
    truth: &FiberConfig,
    estimates: &[FiberEstimate],
    match_threshold_deg: f64,
) -> VoxelScore {
    let mut available: Vec<bool> = vec![true; estimates.len()];
    let mut matched_errors = Vec::new();
    let mut missed = 0usize;

    for t in &truth.directions {
        // Best available estimate for this truth fiber.
        let mut best: Option<(usize, f64)> = None;
        for (i, e) in estimates.iter().enumerate() {
            if !available[i] {
                continue;
            }
            let err = angular_error_deg(&e.direction, t);
            if best.is_none_or(|(_, b)| err < b) {
                best = Some((i, err));
            }
        }
        match best {
            Some((i, err)) if err <= match_threshold_deg => {
                available[i] = false;
                matched_errors.push(err);
            }
            _ => missed += 1,
        }
    }
    let spurious = available.iter().filter(|&&a| a).count();
    VoxelScore {
        true_count: truth.num_fibers(),
        found_count: estimates.len(),
        matched_errors_deg: matched_errors,
        missed,
        spurious,
    }
}

/// Aggregate statistics over many voxel scores.
#[derive(Debug, Clone, Default)]
pub struct DatasetScore {
    /// Number of voxels scored.
    pub voxels: usize,
    /// Voxels fully correct (all fibers matched, none spurious).
    pub correct: usize,
    /// Mean angular error over all matches, degrees.
    pub mean_error_deg: f64,
    /// Total missed fibers.
    pub missed: usize,
    /// Total spurious detections.
    pub spurious: usize,
}

impl DatasetScore {
    /// Aggregate a collection of per-voxel scores.
    pub fn aggregate(scores: &[VoxelScore]) -> Self {
        let mut out = DatasetScore {
            voxels: scores.len(),
            ..Default::default()
        };
        let mut err_sum = 0.0;
        let mut err_count = 0usize;
        for s in scores {
            if s.is_correct() {
                out.correct += 1;
            }
            out.missed += s.missed;
            out.spurious += s.spurious;
            err_sum += s.matched_errors_deg.iter().sum::<f64>();
            err_count += s.matched_errors_deg.len();
        }
        out.mean_error_deg = if err_count > 0 {
            err_sum / err_count as f64
        } else {
            0.0
        };
        out
    }

    /// Fraction of voxels fully correct.
    pub fn accuracy(&self) -> f64 {
        if self.voxels == 0 {
            0.0
        } else {
            self.correct as f64 / self.voxels as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(d: Dir3) -> FiberEstimate {
        FiberEstimate {
            direction: d,
            lambda: 1.0,
            basin_fraction: 0.5,
        }
    }

    #[test]
    fn angular_error_basics() {
        assert!(angular_error_deg(&[1.0, 0.0, 0.0], &[1.0, 0.0, 0.0]) < 1e-9);
        assert!((angular_error_deg(&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]) - 90.0).abs() < 1e-9);
        // Antipodal invariance.
        assert!(angular_error_deg(&[1.0, 0.0, 0.0], &[-1.0, 0.0, 0.0]) < 1e-9);
        // Non-unit inputs are normalized.
        assert!((angular_error_deg(&[2.0, 0.0, 0.0], &[1.0, 1.0, 0.0]) - 45.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_single_fiber_score() {
        let truth = FiberConfig::single([1.0, 0.0, 0.0]);
        let score = score_voxel(&truth, &[est([1.0, 0.0, 0.0])], 5.0);
        assert!(score.is_correct());
        assert_eq!(score.missed, 0);
        assert_eq!(score.spurious, 0);
        assert!(score.mean_error_deg().unwrap() < 1e-9);
    }

    #[test]
    fn missed_fiber_detected() {
        let truth = FiberConfig::crossing([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        let score = score_voxel(&truth, &[est([1.0, 0.0, 0.0])], 5.0);
        assert_eq!(score.missed, 1);
        assert_eq!(score.spurious, 0);
        assert!(!score.is_correct());
    }

    #[test]
    fn spurious_estimate_detected() {
        let truth = FiberConfig::single([1.0, 0.0, 0.0]);
        let score = score_voxel(&truth, &[est([1.0, 0.0, 0.0]), est([0.0, 0.0, 1.0])], 5.0);
        assert_eq!(score.spurious, 1);
        assert!(!score.is_correct());
    }

    #[test]
    fn greedy_matching_does_not_double_assign() {
        // One estimate cannot satisfy two truth fibers.
        let truth = FiberConfig::crossing([1.0, 0.0, 0.0], [0.96, 0.28, 0.0]);
        let score = score_voxel(&truth, &[est([1.0, 0.0, 0.0])], 45.0);
        assert_eq!(score.matched_errors_deg.len(), 1);
        assert_eq!(score.missed, 1);
    }

    #[test]
    fn outside_threshold_is_a_miss_and_spurious() {
        let truth = FiberConfig::single([1.0, 0.0, 0.0]);
        let score = score_voxel(&truth, &[est([0.0, 0.0, 1.0])], 5.0);
        assert_eq!(score.missed, 1);
        assert_eq!(score.spurious, 1);
        assert!(score.mean_error_deg().is_none());
    }

    #[test]
    fn aggregate_accuracy() {
        let truth = FiberConfig::single([1.0, 0.0, 0.0]);
        let good = score_voxel(&truth, &[est([1.0, 0.0, 0.0])], 5.0);
        let bad = score_voxel(&truth, &[], 5.0);
        let agg = DatasetScore::aggregate(&[good.clone(), good, bad]);
        assert_eq!(agg.voxels, 3);
        assert_eq!(agg.correct, 2);
        assert!((agg.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(agg.missed, 1);
    }

    #[test]
    fn empty_aggregate() {
        let agg = DatasetScore::aggregate(&[]);
        assert_eq!(agg.accuracy(), 0.0);
        assert_eq!(agg.voxels, 0);
    }
}
