//! Least-squares fit of a symmetric tensor to ADC measurements.
//!
//! The homogeneous form evaluates as (Equation 4 of the paper)
//!
//! ```text
//! A·gᵐ = Σ_classes C(m; k) · a_class · g₁^{k₁} g₂^{k₂} g₃^{k₃}
//! ```
//!
//! which is *linear* in the packed unique entries `a_class`. Given `N ≥ U`
//! measurements `(gᵢ, Dᵢ)` the design matrix has row
//! `[C(m;k)*g_i^k]_classes`, and the packed tensor is the least-squares
//! solution — the same construction used to map spherical-harmonic
//! coefficients onto tensor entries in the paper's reference \[6\].

use crate::fiber::Dir3;
use linalg::{lstsq, Matrix};
use symtensor::index::IndexClassIter;
use symtensor::multinomial::num_unique_entries;
use symtensor::{SymTensor, TensorBatch};

/// Fit an order-`m` symmetric tensor in 3D to ADC measurements.
///
/// # Errors
/// Returns the underlying linear-algebra error if the system is
/// underdetermined (`measurements.len() < C(m+2, m)`) or the directions are
/// degenerate (e.g. all coplanar).
pub fn fit_tensor(
    m: usize,
    directions: &[Dir3],
    values: &[f64],
) -> Result<SymTensor<f64>, linalg::LinalgError> {
    assert_eq!(directions.len(), values.len(), "one value per direction");
    let u = num_unique_entries(m, 3) as usize;
    let design = design_matrix(m, directions);
    let coeffs = lstsq(&design, values)?;
    debug_assert_eq!(coeffs.len(), u);
    Ok(SymTensor::from_values(m, 3, coeffs).expect("shape consistent"))
}

/// Fit an order-`m` symmetric tensor and append its packed coefficients
/// directly onto a [`TensorBatch`] arena — the voxel-pipeline form of
/// [`fit_tensor`]: no intermediate `SymTensor` allocation, the
/// least-squares solution lands straight in the contiguous buffer the
/// batch solvers (and the simulated GPU's single coalesced host→device
/// copy) consume.
///
/// # Panics
/// Panics if `batch` was not constructed for shape `(m, 3)`.
///
/// # Errors
/// Same conditions as [`fit_tensor`].
pub fn fit_tensor_into(
    m: usize,
    directions: &[Dir3],
    values: &[f64],
    batch: &mut TensorBatch<f64>,
) -> Result<(), linalg::LinalgError> {
    assert_eq!(directions.len(), values.len(), "one value per direction");
    assert_eq!(
        (batch.order(), batch.dim()),
        (m, 3),
        "batch shape does not match the fit shape"
    );
    let design = design_matrix(m, directions);
    let coeffs = lstsq(&design, values)?;
    batch
        .push_values(&coeffs)
        .expect("lstsq returns one coefficient per unique entry");
    Ok(())
}

/// The `N × U` design matrix whose row `i` contains, for each index class,
/// `C(m; k) · gᵢ^k`.
pub fn design_matrix(m: usize, directions: &[Dir3]) -> Matrix {
    let classes: Vec<(u64, Vec<usize>)> = IndexClassIter::new(m, 3)
        .map(|c| (c.occurrences(), c.indices().to_vec()))
        .collect();
    let u = classes.len();
    Matrix::from_fn(directions.len(), u, |i, j| {
        let (coeff, ref rep) = classes[j];
        let g = &directions[i];
        let mono: f64 = rep.iter().map(|&k| g[k]).product();
        coeff as f64 * mono
    })
}

/// Evaluate the fitted form `A·gᵐ` at a direction (convenience wrapper
/// around the symmetric kernel, for residual checks). A tensor whose
/// dimension is not 3 evaluates to NaN.
pub fn evaluate(tensor: &SymTensor<f64>, g: &Dir3) -> f64 {
    symtensor::kernels::axm(tensor, g).unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::{adc, Diffusivities};
    use crate::fiber::FiberConfig;
    use crate::sampling::{gradient_directions, min_measurements};

    #[test]
    fn exact_recovery_of_noiseless_order4_profile() {
        // The quadratic-compartment ADC model is itself a degree-4-or-less
        // even polynomial on the sphere only in special cases; but any
        // homogeneous quartic A g^4 must fit a *generated* quartic exactly.
        // Generate data from a known tensor, fit, compare.
        let truth = SymTensor::<f64>::from_fn(4, 3, |c| (c.rank() as f64 * 0.37).sin());
        let dirs = gradient_directions(24);
        let vals: Vec<f64> = dirs.iter().map(|g| evaluate(&truth, g)).collect();
        let fitted = fit_tensor(4, &dirs, &vals).unwrap();
        assert!(fitted.max_abs_diff(&truth).unwrap() < 1e-9);
    }

    #[test]
    fn minimum_measurement_count_suffices_in_general_position() {
        // Exactly 15 directions determine an order-4 tensor — provided the
        // directions are in general position. Random directions are.
        use rand::{Rng, SeedableRng};
        let truth = SymTensor::<f64>::from_fn(4, 3, |c| 1.0 / (1.0 + c.rank() as f64));
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let dirs: Vec<Dir3> = (0..min_measurements(4))
            .map(|_| {
                let mut v = [
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0f64),
                ];
                crate::fiber::normalize3(&mut v);
                v
            })
            .collect();
        let vals: Vec<f64> = dirs.iter().map(|g| evaluate(&truth, g)).collect();
        let fitted = fit_tensor(4, &dirs, &vals).unwrap();
        assert!(fitted.max_abs_diff(&truth).unwrap() < 1e-9);
    }

    #[test]
    fn fifteen_point_fibonacci_lattice_is_a_degenerate_design() {
        // A cautionary special case: the 15-point Fibonacci lattice is NOT
        // in general position for order 4 — its Gram matrix is numerically
        // singular. (Real protocols use electrostatic-repulsion point sets
        // with headroom; see `standard_protocol`.) The fit still
        // interpolates the measurements, but the coefficients are not
        // uniquely determined.
        let truth = SymTensor::<f64>::from_fn(4, 3, |c| 1.0 / (1.0 + c.rank() as f64));
        let dirs = gradient_directions(min_measurements(4));
        let vals: Vec<f64> = dirs.iter().map(|g| evaluate(&truth, g)).collect();
        let design = design_matrix(4, &dirs);
        let gram_min = linalg::SymmetricEigen::new(&design.gram()).unwrap().min();
        assert!(
            gram_min.abs() < 1e-10,
            "expected singular design, min eig {gram_min:e}"
        );
        if let Ok(fitted) = fit_tensor(4, &dirs, &vals) {
            for (g, v) in dirs.iter().zip(&vals) {
                assert!((evaluate(&fitted, g) - v).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn fit_into_batch_matches_fit_tensor() {
        // The direct-into-arena path produces the same bits as the
        // standalone fit, with the coefficients already packed contiguously.
        let truth = SymTensor::<f64>::from_fn(4, 3, |c| (c.rank() as f64 * 0.37).sin());
        let dirs = gradient_directions(24);
        let vals: Vec<f64> = dirs.iter().map(|g| evaluate(&truth, g)).collect();
        let mut batch = TensorBatch::new(4, 3).unwrap();
        fit_tensor_into(4, &dirs, &vals, &mut batch).unwrap();
        fit_tensor_into(4, &dirs, &vals, &mut batch).unwrap();
        let standalone = fit_tensor(4, &dirs, &vals).unwrap();
        assert_eq!(batch.len(), 2);
        for view in batch.iter() {
            assert_eq!(view.values(), standalone.values());
        }
    }

    #[test]
    fn underdetermined_system_errors() {
        let dirs = gradient_directions(10); // < 15
        let vals = vec![1.0; 10];
        assert!(fit_tensor(4, &dirs, &vals).is_err());
    }

    #[test]
    fn quadratic_adc_fits_quartic_form_on_sphere() {
        // On the unit sphere, a quadratic profile q(g) equals the quartic
        // q(g)·(g·g), so an order-4 fit reproduces single-fiber ADC exactly.
        let f = FiberConfig::single([0.0, 0.6, 0.8]);
        let d = Diffusivities::default();
        let dirs = gradient_directions(30);
        let vals: Vec<f64> = dirs.iter().map(|g| adc(&f, &d, g)).collect();
        let fitted = fit_tensor(4, &dirs, &vals).unwrap();
        // Check at held-out directions.
        for g in gradient_directions(17) {
            let want = adc(&f, &d, &g);
            let got = evaluate(&fitted, &g);
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn crossing_adc_fits_exactly_too() {
        // A sum of quadratic compartments is still quadratic, hence exactly
        // representable as a quartic on the sphere.
        let f = FiberConfig::crossing_at_angle(1.2);
        let d = Diffusivities::default();
        let dirs = gradient_directions(40);
        let vals: Vec<f64> = dirs.iter().map(|g| adc(&f, &d, g)).collect();
        let fitted = fit_tensor(4, &dirs, &vals).unwrap();
        for g in gradient_directions(23) {
            assert!((evaluate(&fitted, &g) - adc(&f, &d, &g)).abs() < 1e-8);
        }
    }

    #[test]
    fn noisy_fit_stays_close() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let f = FiberConfig::single([1.0, 0.0, 0.0]);
        let d = Diffusivities::default();
        let dirs = gradient_directions(45);
        let vals: Vec<f64> = dirs
            .iter()
            .map(|g| adc(&f, &d, g) * (1.0 + rng.gen_range(-0.02..0.02)))
            .collect();
        let fitted = fit_tensor(4, &dirs, &vals).unwrap();
        // Still peaks near the fiber: value along fiber >> transverse.
        let along = evaluate(&fitted, &[1.0, 0.0, 0.0]);
        let across = evaluate(&fitted, &[0.0, 1.0, 0.0]);
        assert!(along > 2.0 * across, "{along} vs {across}");
    }

    #[test]
    fn design_matrix_row_evaluates_form() {
        // design_matrix * packed_values == pointwise evaluation.
        let truth = SymTensor::<f64>::from_fn(4, 3, |c| 0.1 * c.rank() as f64 - 0.4);
        let dirs = gradient_directions(12);
        let design = design_matrix(4, &dirs);
        let prod = design.matvec(truth.values()).unwrap();
        for (i, g) in dirs.iter().enumerate() {
            assert!((prod[i] - evaluate(&truth, g)).abs() < 1e-12);
        }
    }

    #[test]
    fn order6_fit_works() {
        let truth = SymTensor::<f64>::from_fn(6, 3, |c| ((c.rank() * 7 % 11) as f64 - 5.0) / 10.0);
        let dirs = gradient_directions(40); // >= 28
        let vals: Vec<f64> = dirs.iter().map(|g| evaluate(&truth, g)).collect();
        let fitted = fit_tensor(6, &dirs, &vals).unwrap();
        assert!(fitted.max_abs_diff(&truth).unwrap() < 1e-7);
    }
}
