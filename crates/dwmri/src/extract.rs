//! Fiber-direction extraction: SS-HOPM multistart → local maxima → axes.
//!
//! The eigenpairs of the fitted tensor that are local maxima of `A·gᵐ` on
//! the sphere (negative-stable, found by convexly-shifted SS-HOPM) are the
//! fiber directions (Section IV–V of the paper). Because the ADC is
//! antipodally symmetric and `m` is even, `g` and `−g` describe the same
//! axis; estimates are canonicalized to a positive leading component.

use crate::fiber::Dir3;
use backend::SolveBackend;
use sshopm::solver::IterationPolicy;
use sshopm::{
    multistart, spectrum_from_pairs, DedupConfig, Shift, Solver, SolverSpec, Spectrum, Stability,
};
use symtensor::{SymTensorRef, TensorBatch};
use telemetry::Telemetry;

/// Tuning for fiber extraction.
#[derive(Debug, Clone)]
pub struct ExtractConfig {
    /// Starting vectors per tensor (the paper uses 128).
    pub num_starts: usize,
    /// Which eigen-iteration to run per voxel (`sshopm` by default;
    /// `geap`/`qrst` trade iteration cost for basin coverage).
    pub solver: SolverSpec,
    /// SS-HOPM shift policy. The paper uses `α = 0` for its clean synthetic
    /// set; `Shift::Convex` is the safe default for noisy data. Ignored by
    /// solvers that pick their own shift (`geap`, `qrst`).
    pub shift: Shift,
    /// Convergence tolerance on the eigenvalue.
    pub tol: f64,
    /// Iteration cap per solve.
    pub max_iters: usize,
    /// Keep at most this many fibers (strongest eigenvalues first).
    pub max_fibers: usize,
    /// Discard maxima whose eigenvalue is below this fraction of the
    /// largest one (rejects spurious shallow maxima from noise).
    pub relative_threshold: f64,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        Self {
            num_starts: 128,
            solver: SolverSpec::default(),
            shift: Shift::Convex,
            tol: 1e-10,
            max_iters: 1000,
            max_fibers: 3,
            relative_threshold: 0.5,
        }
    }
}

/// One extracted fiber axis.
#[derive(Debug, Clone)]
pub struct FiberEstimate {
    /// Unit axis, canonicalized so the first nonzero component is positive.
    pub direction: Dir3,
    /// The eigenvalue (peak ADC value of the fitted form along the axis).
    pub lambda: f64,
    /// Fraction of starting vectors that converged into this basin.
    pub basin_fraction: f64,
}

/// Canonicalize an axis: flip sign so the first component with magnitude
/// above 1e-12 is positive.
pub fn canonicalize_axis(mut d: Dir3) -> Dir3 {
    for i in 0..3 {
        if d[i].abs() > 1e-12 {
            if d[i] < 0.0 {
                d = [-d[0], -d[1], -d[2]];
            }
            break;
        }
    }
    d
}

/// Extract fiber directions from a fitted order-`m` (even) tensor.
///
/// Runs SS-HOPM from `cfg.num_starts` deterministic Fibonacci-sphere
/// starts, keeps negative-stable (local-max) eigenpairs, applies the
/// relative eigenvalue threshold and returns at most `cfg.max_fibers`
/// estimates, strongest first.
pub fn extract_fibers<'a>(
    tensor: impl Into<SymTensorRef<'a, f64>>,
    cfg: &ExtractConfig,
) -> Vec<FiberEstimate> {
    let tensor = tensor.into();
    assert_eq!(tensor.dim(), 3, "fiber extraction is for 3D tensors");
    let starts = sshopm::starts::fibonacci_sphere::<f64>(cfg.num_starts);
    let solver = extraction_solver(cfg);
    let spectrum = multistart(&*solver, tensor, &starts, &DedupConfig::default(), 1e-5);
    spectrum_to_fibers(&spectrum, cfg)
}

/// Extract fiber directions from a whole batch of fitted tensors (one per
/// voxel) through an execution backend.
///
/// Every tensor is solved from the same `cfg.num_starts` Fibonacci-sphere
/// starts in one [`SolveBackend::solve_batch`] call — this is the paper's
/// application workload (Section VI): thousands of independent voxels,
/// each a small batched SS-HOPM problem. The batch arena guarantees a
/// uniform shape by construction and hands the backend one contiguous
/// buffer (a single coalesced host→device transfer on the GPU backends).
/// The result is one `Vec<FiberEstimate>` per input tensor, in order, each
/// identical to what [`extract_fibers`] returns for that tensor.
///
/// Note the GPU-simulated backends support only [`Shift::Fixed`]; pass a
/// CPU backend for the convex/adaptive shifts recommended for noisy data.
/// Backend failures (unsupported shift, an exhausted resilient run)
/// surface as [`backend::BackendError`], never panics.
pub fn extract_fibers_with(
    tensors: &TensorBatch<f64>,
    cfg: &ExtractConfig,
    backend: &dyn SolveBackend<f64>,
    telemetry: &Telemetry,
) -> Result<Vec<Vec<FiberEstimate>>, backend::BackendError> {
    extract_fibers_reported(tensors, cfg, backend, telemetry).map(|(fibers, _)| fibers)
}

/// [`extract_fibers_with`], additionally returning the backend's
/// [`backend::BatchReport`] so callers can render throughput, fault, and
/// latency observability (e.g. a unified [`telemetry::RunReport`]) for the
/// extraction run instead of only the fiber directions.
pub fn extract_fibers_reported(
    tensors: &TensorBatch<f64>,
    cfg: &ExtractConfig,
    backend: &dyn SolveBackend<f64>,
    telemetry: &Telemetry,
) -> Result<(Vec<Vec<FiberEstimate>>, backend::BatchReport<f64>), backend::BackendError> {
    assert!(
        tensors.is_empty() || tensors.dim() == 3,
        "fiber extraction is for 3D tensors"
    );
    let starts = sshopm::starts::fibonacci_sphere::<f64>(cfg.num_starts);
    let solver = extraction_solver(cfg);
    let report = backend.solve_batch(tensors, &starts, &*solver, telemetry)?;
    // The per-start pairs stay inside the report (its workload/throughput
    // accounting is derived from `results`); each voxel's pairs are cloned
    // once into the dedup pass.
    let fibers = report
        .results
        .iter()
        .zip(tensors.iter())
        .map(|(pairs, tensor)| {
            let spectrum =
                spectrum_from_pairs(tensor, pairs.iter().cloned(), &DedupConfig::default(), 1e-5);
            spectrum_to_fibers(&spectrum, cfg)
        })
        .collect();
    Ok((fibers, report))
}

fn extraction_solver(cfg: &ExtractConfig) -> Box<dyn Solver<f64>> {
    cfg.solver.build(
        cfg.shift,
        IterationPolicy::Converge {
            tol: cfg.tol,
            max_iters: cfg.max_iters,
        },
    )
}

/// Shared back half of fiber extraction: local maxima of the deduplicated
/// spectrum → canonicalized, thresholded, strongest-first estimates.
fn spectrum_to_fibers(spectrum: &Spectrum<f64>, cfg: &ExtractConfig) -> Vec<FiberEstimate> {
    let mut maxima: Vec<FiberEstimate> = spectrum
        .entries
        .iter()
        .filter(|e| {
            e.stability == Stability::NegativeStable || e.stability == Stability::Degenerate
        })
        .map(|e| FiberEstimate {
            direction: canonicalize_axis([e.pair.x[0], e.pair.x[1], e.pair.x[2]]),
            lambda: e.pair.lambda,
            basin_fraction: e.basin_count as f64 / cfg.num_starts as f64,
        })
        .collect();

    // Strongest first; threshold relative to the strongest.
    maxima.sort_by(|a, b| b.lambda.partial_cmp(&a.lambda).unwrap());
    if let Some(strongest) = maxima.first().map(|f| f.lambda) {
        maxima.retain(|f| f.lambda >= cfg.relative_threshold * strongest);
    }
    maxima.truncate(cfg.max_fibers);
    maxima
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::{adc, Diffusivities};
    use crate::fiber::FiberConfig;
    use crate::fit::fit_tensor;
    use crate::metrics::angular_error_deg;
    use crate::sampling::gradient_directions;
    use symtensor::SymTensor;

    fn fit_config(f: &FiberConfig) -> SymTensor<f64> {
        let d = Diffusivities::default();
        let dirs = gradient_directions(30);
        let vals: Vec<f64> = dirs.iter().map(|g| adc(f, &d, g)).collect();
        fit_tensor(4, &dirs, &vals).unwrap()
    }

    #[test]
    fn single_fiber_is_recovered() {
        let truth = FiberConfig::single([0.0, 0.6, 0.8]);
        let tensor = fit_config(&truth);
        let fibers = extract_fibers(&tensor, &ExtractConfig::default());
        assert!(!fibers.is_empty());
        let err = angular_error_deg(&fibers[0].direction, &truth.directions[0]);
        assert!(err < 1.0, "angular error {err} deg");
    }

    #[test]
    fn orthogonal_crossing_yields_two_fibers() {
        let truth = FiberConfig::crossing([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        let tensor = fit_config(&truth);
        let fibers = extract_fibers(&tensor, &ExtractConfig::default());
        assert_eq!(fibers.len(), 2, "{fibers:?}");
        // Each truth direction matched by some estimate within 2 degrees.
        for t in &truth.directions {
            let best = fibers
                .iter()
                .map(|f| angular_error_deg(&f.direction, t))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 2.0, "direction {t:?} err {best}");
        }
    }

    #[test]
    fn sixty_degree_crossing_resolved_by_order4() {
        let truth = FiberConfig::crossing_at_angle(60.0f64.to_radians());
        let tensor = fit_config(&truth);
        let cfg = ExtractConfig {
            relative_threshold: 0.7,
            ..Default::default()
        };
        let fibers = extract_fibers(&tensor, &cfg);
        assert!(
            fibers.len() >= 2,
            "60-degree crossing should give two maxima: {fibers:?}"
        );
    }

    #[test]
    fn shallow_crossing_merges_into_one_peak() {
        // Below the order-4 resolution limit, the two lobes merge: a single
        // maximum along the bisector.
        let truth = FiberConfig::crossing_at_angle(20.0f64.to_radians());
        let tensor = fit_config(&truth);
        let fibers = extract_fibers(&tensor, &ExtractConfig::default());
        assert_eq!(fibers.len(), 1, "{fibers:?}");
        // The merged peak is along the bisector (+x).
        let err = angular_error_deg(&fibers[0].direction, &[1.0, 0.0, 0.0]);
        assert!(err < 2.0, "bisector error {err}");
    }

    #[test]
    fn estimates_are_sorted_and_canonicalized() {
        let truth = FiberConfig::new(vec![[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]], vec![0.7, 0.3]);
        let tensor = fit_config(&truth);
        let cfg = ExtractConfig {
            relative_threshold: 0.1,
            ..Default::default()
        };
        let fibers = extract_fibers(&tensor, &cfg);
        for w in fibers.windows(2) {
            assert!(w[0].lambda >= w[1].lambda);
        }
        for f in &fibers {
            let first_nonzero = f.direction.iter().find(|v| v.abs() > 1e-12).unwrap();
            assert!(*first_nonzero > 0.0, "{:?}", f.direction);
        }
        // The dominant fiber (weight 0.7) comes first.
        let err = angular_error_deg(&fibers[0].direction, &[1.0, 0.0, 0.0]);
        assert!(err < 2.0);
    }

    #[test]
    fn basin_fractions_are_sane() {
        let truth = FiberConfig::single([1.0, 0.0, 0.0]);
        let tensor = fit_config(&truth);
        let fibers = extract_fibers(&tensor, &ExtractConfig::default());
        let total: f64 = fibers.iter().map(|f| f.basin_fraction).sum();
        assert!(total <= 1.0 + 1e-12);
        assert!(fibers[0].basin_fraction > 0.3);
    }

    #[test]
    fn canonicalize_flips_negative_leading() {
        assert_eq!(canonicalize_axis([-1.0, 0.0, 0.0]), [1.0, 0.0, 0.0]);
        assert_eq!(canonicalize_axis([0.0, -0.5, 0.5]), [0.0, 0.5, -0.5]);
        let z = canonicalize_axis([0.0, 0.0, 1.0]);
        assert_eq!(z, [0.0, 0.0, 1.0]);
    }

    #[test]
    fn batched_extraction_matches_per_tensor_path() {
        use backend::{CpuParallel, KernelStrategy};

        let configs = [
            FiberConfig::single([0.0, 0.6, 0.8]),
            FiberConfig::crossing([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]),
            FiberConfig::crossing_at_angle(60.0f64.to_radians()),
        ];
        let fitted: Vec<_> = configs.iter().map(fit_config).collect();
        let tensors = TensorBatch::from_tensors(&fitted).unwrap();
        let cfg = ExtractConfig::default();

        let batched = extract_fibers_with(
            &tensors,
            &cfg,
            &CpuParallel::new(2, KernelStrategy::General),
            &Telemetry::disabled(),
        )
        .unwrap();
        assert_eq!(batched.len(), tensors.len());
        for (tensor, got) in tensors.iter().zip(&batched) {
            let want = extract_fibers(tensor, &cfg);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.lambda.to_bits(), w.lambda.to_bits());
                assert_eq!(g.direction, w.direction);
                assert!((g.basin_fraction - w.basin_fraction).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn lockstep_batched_solves_match_sequential_on_crossing_fixtures() {
        // The lockstep panel driver (kernel strategy `batched` + fixed
        // shift) must be bitwise-indistinguishable from the scalar
        // per-tensor path on real fitted DW-MRI tensors — here a sweep of
        // two-fiber crossing voxels across the hard low-angle range.
        use backend::{CpuSequential, KernelStrategy};
        use sshopm::SsHopm;
        use telemetry::Telemetry;

        let fitted: Vec<SymTensor<f64>> = (1..=9)
            .map(|k| fit_config(&FiberConfig::crossing_at_angle(f64::from(k) * 10.0)))
            .collect();
        let tensors = TensorBatch::from_tensors(&fitted).unwrap();
        let starts = sshopm::starts::fibonacci_sphere(16);
        let solver = SsHopm::new(Shift::Fixed(1.0)).with_policy(IterationPolicy::Converge {
            tol: 1e-12,
            max_iters: 2000,
        });
        let scalar = CpuSequential::new(KernelStrategy::Precomputed)
            .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
            .unwrap();
        let lockstep = CpuSequential::new(KernelStrategy::Batched)
            .solve_batch(&tensors, &starts, &solver, &Telemetry::disabled())
            .unwrap();
        assert_eq!(lockstep.kernel, "batched");
        assert_eq!(lockstep.total_iterations, scalar.total_iterations);
        for ((t, v, got), (_, _, want)) in lockstep.iter_flat().zip(scalar.iter_flat()) {
            assert_eq!(
                got.lambda.to_bits(),
                want.lambda.to_bits(),
                "crossing tensor {t} start {v}"
            );
            assert_eq!(got.iterations, want.iterations);
            assert_eq!(got.converged, want.converged);
            for (g, w) in got.x.iter().zip(&want.x) {
                assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }

    #[test]
    fn batched_extraction_records_telemetry() {
        use backend::{CpuSequential, KernelStrategy};
        use telemetry::Telemetry;

        let tensors =
            TensorBatch::from_tensors(&[fit_config(&FiberConfig::single([1.0, 0.0, 0.0]))])
                .unwrap();
        let telemetry = Telemetry::enabled();
        let fibers = extract_fibers_with(
            &tensors,
            &ExtractConfig::default(),
            &CpuSequential::new(KernelStrategy::General),
            &telemetry,
        )
        .unwrap();
        assert_eq!(fibers.len(), 1);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("batch.tensors_done"), Some(1));
        assert_eq!(snap.counter("batch.solves"), Some(128));
    }

    #[test]
    fn qrst_covers_eigenpairs_fixed_shift_sshopm_misses() {
        // On a crossing-fiber voxel the fitted order-4 form has, besides
        // the two fiber maxima, a through-plane eigenpair along ±z (the
        // transverse diffusivity, λ ≈ 0.3). A shifted power iteration can
        // only converge to local maxima, so fixed-shift SS-HOPM never
        // reports it — but QRST validates every column of its rotating
        // basis and surfaces it from some starts.
        let truth = FiberConfig::crossing_at_angle(75.0f64.to_radians());
        let tensor = fit_config(&truth);
        let starts = sshopm::starts::fibonacci_sphere::<f64>(32);
        let policy = IterationPolicy::Converge {
            tol: 1e-10,
            max_iters: 1000,
        };
        let spectrum = |spec: &str| {
            let solver = SolverSpec::parse(spec)
                .unwrap()
                .build::<f64>(Shift::Fixed(0.0), policy);
            multistart(&*solver, &tensor, &starts, &DedupConfig::default(), 1e-5)
        };

        let fixed = spectrum("sshopm");
        let qrst = spectrum("qrst");

        // Both find the two crossing maxima (λ ≈ 1.0036).
        for s in [&fixed, &qrst] {
            let maxima = s
                .entries
                .iter()
                .filter(|e| e.stability == Stability::NegativeStable && e.pair.lambda > 1.0)
                .count();
            assert_eq!(maxima, 2, "expected both fiber maxima");
        }

        // The through-plane eigenpair is invisible to the fixed-shift
        // power iteration...
        let through_plane = |s: &Spectrum<f64>| {
            s.entries
                .iter()
                .filter(|e| e.pair.lambda < 0.5 && e.pair.x[2].abs() > 0.99)
                .count()
        };
        assert_eq!(through_plane(&fixed), 0, "power iteration found a minimum?");
        // ...but QRST recovers it.
        assert!(
            through_plane(&qrst) >= 1,
            "qrst should surface the through-plane eigenpair: {:#?}",
            qrst.entries
                .iter()
                .map(|e| (e.pair.lambda, e.pair.x.clone()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn geap_matches_convex_sshopm_maxima_with_fewer_iterations() {
        // GEAP's per-iterate projected-Hessian shift reaches the same
        // local maxima as convexly-shifted SS-HOPM but without the
        // worst-case-sized constant shift slowing every step.
        let truth = FiberConfig::crossing_at_angle(75.0f64.to_radians());
        let tensor = fit_config(&truth);
        let starts = sshopm::starts::fibonacci_sphere::<f64>(32);
        let policy = IterationPolicy::Converge {
            tol: 1e-10,
            max_iters: 1000,
        };
        let run = |spec: &str| {
            let solver = SolverSpec::parse(spec)
                .unwrap()
                .build::<f64>(Shift::Convex, policy);
            let s = multistart(&*solver, &tensor, &starts, &DedupConfig::default(), 1e-5);
            let iters: usize = s
                .entries
                .iter()
                .map(|e| e.pair.iterations * e.basin_count)
                .sum();
            (s, iters)
        };
        let (convex, convex_iters) = run("sshopm");
        let (geap, geap_iters) = run("geap");

        let maxima = |s: &Spectrum<f64>| {
            let mut lambdas: Vec<f64> = s
                .entries
                .iter()
                .filter(|e| e.stability == Stability::NegativeStable)
                .map(|e| e.pair.lambda)
                .collect();
            lambdas.sort_by(f64::total_cmp);
            lambdas
        };
        let (want, got) = (maxima(&convex), maxima(&geap));
        assert_eq!(want.len(), got.len(), "{want:?} vs {got:?}");
        for (w, g) in want.iter().zip(&got) {
            assert!((w - g).abs() < 1e-8, "{w} vs {g}");
        }
        assert!(
            geap_iters * 2 < convex_iters,
            "geap took {geap_iters} iterations vs convex sshopm's {convex_iters}"
        );
    }

    #[test]
    fn max_fibers_cap_is_respected() {
        let truth = FiberConfig::crossing([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        let tensor = fit_config(&truth);
        let cfg = ExtractConfig {
            max_fibers: 1,
            ..Default::default()
        };
        let fibers = extract_fibers(&tensor, &cfg);
        assert_eq!(fibers.len(), 1);
    }
}
