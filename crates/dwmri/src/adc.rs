//! The multi-compartment apparent-diffusion-coefficient (ADC) model.
//!
//! Each fiber bundle contributes an axially-symmetric profile peaked along
//! its axis `u`:
//!
//! ```text
//! Dᵢ(g) = d_perp + (d_par − d_perp) · (uᵢ·g)^p
//! ```
//!
//! and a voxel's ADC is the volume-fraction-weighted sum over compartments,
//! `D(g) = Σᵢ wᵢ·Dᵢ(g)`.
//!
//! The kernel power `p` controls how peaked the per-fiber response is:
//!
//! * `p = 2` is the classical diffusion-tensor (quadratic) compartment. A
//!   *sum* of quadratics is still a quadratic form — which is precisely the
//!   paper's Section IV argument for why 2nd-order approximations cannot
//!   resolve crossing fibers: two orthogonal fibers collapse into one
//!   oblate profile whose maxima form a ring, not two peaks.
//! * `p = 4` (the default) is the peaked higher-order response that the
//!   order-4 spherical-harmonic/tensor models of the paper's references
//!   \[4\]–\[6\] are designed to capture. Restricted to the unit sphere it is
//!   exactly representable by an order-4 homogeneous form (because
//!   `d_perp = d_perp·(g·g)²` there), so the least-squares fit is exact
//!   and the fitted tensor's local maxima sit on the true fiber axes.
//!
//! Units are mm²/s scaled by 10³ (typical white matter: `d_par ≈ 1.7e-3`,
//! `d_perp ≈ 0.3e-3` mm²/s), keeping entries O(1) like the paper's set.

use crate::fiber::{Dir3, FiberConfig};

/// Per-fiber diffusivities and kernel shape (scaled mm²/s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diffusivities {
    /// Longitudinal (along-fiber) diffusivity.
    pub d_par: f64,
    /// Transverse diffusivity.
    pub d_perp: f64,
    /// Even kernel power `p` of the per-fiber response `(u·g)^p`.
    pub kernel_power: u32,
}

impl Default for Diffusivities {
    fn default() -> Self {
        // 1.7e-3 / 0.3e-3 mm^2/s, scaled by 1e3; HARDI-like peaked kernel.
        Self {
            d_par: 1.7,
            d_perp: 0.3,
            kernel_power: 4,
        }
    }
}

impl Diffusivities {
    /// The classical quadratic (DTI) compartment model.
    pub fn quadratic() -> Self {
        Self {
            kernel_power: 2,
            ..Self::default()
        }
    }

    /// Fractional anisotropy-like contrast `(d_par - d_perp) / d_par`.
    pub fn contrast(&self) -> f64 {
        (self.d_par - self.d_perp) / self.d_par
    }
}

/// Evaluate the ADC `D(g)` of a voxel's fiber configuration at a unit
/// gradient direction `g`.
pub fn adc(config: &FiberConfig, diff: &Diffusivities, g: &Dir3) -> f64 {
    debug_assert!(
        diff.kernel_power.is_multiple_of(2),
        "kernel power must be even"
    );
    let mut total = 0.0;
    for (u, &w) in config.directions.iter().zip(&config.weights) {
        let dot = u[0] * g[0] + u[1] * g[1] + u[2] * g[2];
        total +=
            w * (diff.d_perp + (diff.d_par - diff.d_perp) * dot.powi(diff.kernel_power as i32));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn along_fiber_is_maximal() {
        let f = FiberConfig::single([1.0, 0.0, 0.0]);
        let d = Diffusivities::default();
        let along = adc(&f, &d, &[1.0, 0.0, 0.0]);
        let across = adc(&f, &d, &[0.0, 1.0, 0.0]);
        assert!((along - d.d_par).abs() < 1e-12);
        assert!((across - d.d_perp).abs() < 1e-12);
        assert!(along > across);
    }

    #[test]
    fn oblique_direction_interpolates() {
        let f = FiberConfig::single([1.0, 0.0, 0.0]);
        let d = Diffusivities::default();
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let oblique = adc(&f, &d, &[s, s, 0.0]);
        // (u.g)^4 = (1/sqrt(2))^4 = 1/4.
        let expected = d.d_perp + (d.d_par - d.d_perp) * 0.25;
        assert!((oblique - expected).abs() < 1e-12);
    }

    #[test]
    fn quadratic_kernel_matches_dti_form() {
        let f = FiberConfig::single([1.0, 0.0, 0.0]);
        let d = Diffusivities::quadratic();
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let oblique = adc(&f, &d, &[s, s, 0.0]);
        let expected = d.d_perp + (d.d_par - d.d_perp) * 0.5;
        assert!((oblique - expected).abs() < 1e-12);
    }

    #[test]
    fn adc_is_antipodally_symmetric() {
        let f = FiberConfig::crossing([1.0, 1.0, 0.0], [0.0, 0.5, 1.0]);
        let d = Diffusivities::default();
        let g = [0.26726124, 0.53452248, 0.80178373];
        let neg = [-g[0], -g[1], -g[2]];
        assert!((adc(&f, &d, &g) - adc(&f, &d, &neg)).abs() < 1e-12);
    }

    #[test]
    fn quartic_kernel_separates_orthogonal_crossing() {
        // With the peaked kernel, an orthogonal crossing has maxima along
        // both fibers and a saddle at the bisector.
        let f = FiberConfig::crossing([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        let d = Diffusivities::default();
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let along = adc(&f, &d, &[1.0, 0.0, 0.0]);
        let bisector = adc(&f, &d, &[s, s, 0.0]);
        assert!(along > bisector, "{along} vs {bisector}");
    }

    #[test]
    fn quadratic_kernel_cannot_separate_orthogonal_crossing() {
        // The Section IV failure mode: the quadratic sum is flat on the
        // whole great circle through both fibers.
        let f = FiberConfig::crossing([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        let d = Diffusivities::quadratic();
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let along = adc(&f, &d, &[1.0, 0.0, 0.0]);
        let bisector = adc(&f, &d, &[s, s, 0.0]);
        assert!((along - bisector).abs() < 1e-12);
    }

    #[test]
    fn crossing_has_maxima_along_both_fibers() {
        let f = FiberConfig::crossing([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        let d = Diffusivities::default();
        let along1 = adc(&f, &d, &[1.0, 0.0, 0.0]);
        let along2 = adc(&f, &d, &[0.0, 1.0, 0.0]);
        let transverse = adc(&f, &d, &[0.0, 0.0, 1.0]);
        assert!((along1 - along2).abs() < 1e-12, "symmetric crossing");
        assert!(along1 > transverse);
    }

    #[test]
    fn adc_is_positive_everywhere() {
        let f = FiberConfig::crossing_at_angle(1.0);
        let d = Diffusivities::default();
        for &g in &[
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [0.57735, 0.57735, 0.57735],
        ] {
            assert!(adc(&f, &d, &g) > 0.0);
        }
    }

    #[test]
    fn weights_scale_contributions() {
        let f = FiberConfig::new(vec![[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]], vec![0.9, 0.1]);
        let d = Diffusivities::default();
        assert!(adc(&f, &d, &[1.0, 0.0, 0.0]) > adc(&f, &d, &[0.0, 1.0, 0.0]));
    }

    #[test]
    fn contrast_metric() {
        let d = Diffusivities {
            d_par: 2.0,
            d_perp: 0.5,
            kernel_power: 4,
        };
        assert!((d.contrast() - 0.75).abs() < 1e-12);
    }
}
