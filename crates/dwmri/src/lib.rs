//! # dwmri — synthetic diffusion-weighted MRI fiber detection
//!
//! The paper's motivating application (Section IV): detect nerve-fiber
//! directions in the brain from diffusion-weighted MRI. Each voxel's
//! apparent diffusion coefficient (ADC) profile `D(g)` on the unit sphere
//! is approximated by an even-order homogeneous form `D(g) ≈ A·gᵐ` for a
//! symmetric tensor `A ∈ R^[m,3]`; the local maxima of `D` — i.e. the
//! negative-stable eigenpairs of `A` — are the fiber directions.
//!
//! The original evaluation used a 1024-tensor synthetic set from the
//! University of Utah SCI Institute which is not distributed; this crate
//! builds the equivalent phantom from first principles:
//!
//! * [`fiber`] — ground-truth fiber configurations per voxel;
//! * [`adc`] — the multi-compartment ADC model `D(g) = Σ wᵢ·gᵀDᵢg` with
//!   cigar-shaped per-fiber diffusion matrices;
//! * [`sampling`] — gradient directions (≥ 15 measurements for `m = 4`);
//! * [`fit`] — least-squares fit of the packed tensor coefficients;
//! * [`phantom`] — the 32×32 voxel grid (1024 voxels) mixing single-fiber
//!   and two-fiber-crossing regions;
//! * [`extract`] — SS-HOPM multistart + local-maximum filtering to recover
//!   fiber directions;
//! * [`metrics`] — angular error and detection-rate scoring.

#![deny(missing_docs)]

pub mod adc;
pub mod extract;
pub mod fiber;
pub mod fit;
pub mod metrics;
pub mod noise;
pub mod phantom;
pub mod sampling;
pub mod tract;

pub use extract::{
    extract_fibers, extract_fibers_reported, extract_fibers_with, ExtractConfig, FiberEstimate,
};
pub use fiber::FiberConfig;
pub use fit::fit_tensor;
pub use metrics::{angular_error_deg, score_voxel, VoxelScore};
pub use noise::NoiseModel;
pub use phantom::{Phantom, PhantomConfig, Voxel};
pub use tract::{trace, FiberField, Streamline, TractConfig};
