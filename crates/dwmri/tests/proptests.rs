//! Property tests for the DW-MRI pipeline: ADC model invariants, fit
//! exactness on generated quartics, and fiber recovery over random
//! configurations.

use dwmri::adc::{adc, Diffusivities};
use dwmri::extract::{extract_fibers, ExtractConfig};
use dwmri::fiber::FiberConfig;
use dwmri::fit::{evaluate, fit_tensor};
use dwmri::metrics::angular_error_deg;
use dwmri::sampling::gradient_directions;
use proptest::prelude::*;

/// Strategy: a random unit direction.
fn direction() -> impl Strategy<Value = [f64; 3]> {
    (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0).prop_filter_map("nonzero", |(x, y, z)| {
        let n = (x * x + y * y + z * z).sqrt();
        (n > 0.2).then(|| [x / n, y / n, z / n])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adc_bounded_by_diffusivities(u in direction(), g in direction()) {
        let f = FiberConfig::single(u);
        let d = Diffusivities::default();
        let v = adc(&f, &d, &g);
        prop_assert!(v >= d.d_perp - 1e-12);
        prop_assert!(v <= d.d_par + 1e-12);
    }

    #[test]
    fn adc_antipodal_symmetry(u in direction(), g in direction(), w in 0.1f64..0.9) {
        let f = FiberConfig::new(vec![u, [0.0, 0.0, 1.0]], vec![w, 1.0 - w]);
        let d = Diffusivities::default();
        let neg = [-g[0], -g[1], -g[2]];
        prop_assert!((adc(&f, &d, &g) - adc(&f, &d, &neg)).abs() < 1e-12);
    }

    #[test]
    fn adc_peak_is_at_the_fiber(u in direction()) {
        // D(u) >= D(g) for every g (single fiber).
        let f = FiberConfig::single(u);
        let d = Diffusivities::default();
        let at_peak = adc(&f, &d, &u);
        for g in gradient_directions(40) {
            prop_assert!(at_peak >= adc(&f, &d, &g) - 1e-12);
        }
    }

    #[test]
    fn quartic_fit_is_exact_on_any_configuration(u in direction(), v in direction(), w in 0.2f64..0.8) {
        let f = FiberConfig::new(vec![u, v], vec![w, 1.0 - w]);
        let d = Diffusivities::default();
        let dirs = gradient_directions(30);
        let vals: Vec<f64> = dirs.iter().map(|g| adc(&f, &d, g)).collect();
        let tensor = fit_tensor(4, &dirs, &vals).unwrap();
        // Check on held-out directions: the quartic kernel is exactly
        // order-4 representable on the sphere.
        for g in gradient_directions(19) {
            let want = adc(&f, &d, &g);
            let got = evaluate(&tensor, &g);
            prop_assert!((got - want).abs() < 1e-7 * (1.0 + want.abs()), "{got} vs {want}");
        }
    }

    #[test]
    fn single_fiber_recovered_within_a_degree(u in direction()) {
        let f = FiberConfig::single(u);
        let d = Diffusivities::default();
        let dirs = gradient_directions(30);
        let vals: Vec<f64> = dirs.iter().map(|g| adc(&f, &d, g)).collect();
        let tensor = fit_tensor(4, &dirs, &vals).unwrap();
        let cfg = ExtractConfig {
            num_starts: 48,
            ..Default::default()
        };
        let fibers = extract_fibers(&tensor, &cfg);
        prop_assert!(!fibers.is_empty());
        let err = angular_error_deg(&fibers[0].direction, &u);
        prop_assert!(err < 1.0, "angular error {err} deg");
    }

    #[test]
    fn weights_order_peak_heights(u in direction(), w in 0.55f64..0.95) {
        // The heavier compartment's peak evaluates higher.
        let v = {
            // A direction well away from u: rotate by swapping components.
            let cand = [u[1], u[2], u[0]];
            let dot: f64 = u.iter().zip(&cand).map(|(a, b)| a * b).sum();
            prop_assume!(dot.abs() < 0.9);
            cand
        };
        let f = FiberConfig::new(vec![u, v], vec![w, 1.0 - w]);
        let d = Diffusivities::default();
        prop_assert!(adc(&f, &d, &u) > adc(&f, &d, &v));
    }
}
