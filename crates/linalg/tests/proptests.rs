//! Property-based tests for the small dense linear algebra substrate.

use linalg::{lstsq, Cholesky, Matrix, SymmetricEigen};
use proptest::prelude::*;

/// Strategy: a random matrix of the given shape with entries in [-1, 1].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Strategy: a random SPD matrix built as BᵀB + n·I.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n).prop_map(move |b| {
        let mut g = b.gram();
        for i in 0..n {
            g[(i, i)] += n as f64;
        }
        g
    })
}

/// Strategy: a random symmetric matrix (B + Bᵀ)/2.
fn symmetric(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n).prop_map(move |b| Matrix::from_fn(n, n, |i, j| 0.5 * (b[(i, j)] + b[(j, i)])))
}

proptest! {
    #[test]
    fn cholesky_solve_inverts_matvec(a in spd(4), x in proptest::collection::vec(-5.0f64..5.0, 4)) {
        let b = a.matvec(&x).unwrap();
        let got = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        for (g, t) in got.iter().zip(&x) {
            prop_assert!((g - t).abs() < 1e-8, "{g} vs {t}");
        }
    }

    #[test]
    fn cholesky_factor_reconstructs(a in spd(5)) {
        let l = Cholesky::new(&a).unwrap().factor().clone();
        let rec = l.matmul(&l.transpose()).unwrap();
        prop_assert!(rec.max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn eigen_reconstructs_matrix(a in symmetric(4)) {
        let eig = SymmetricEigen::new(&a).unwrap();
        // V diag(lambda) V^T == A.
        let n = 4;
        let mut rec = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += eig.eigenvectors[(i, k)] * eig.eigenvalues[k] * eig.eigenvectors[(j, k)];
                }
                rec[(i, j)] = s;
            }
        }
        prop_assert!(rec.max_abs_diff(&a).unwrap() < 1e-9);
    }

    #[test]
    fn eigen_trace_and_ordering(a in symmetric(5)) {
        let eig = SymmetricEigen::new(&a).unwrap();
        let tr: f64 = (0..5).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.eigenvalues.iter().sum();
        prop_assert!((tr - sum).abs() < 1e-9);
        for w in eig.eigenvalues.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn lstsq_residual_is_stationary(a in matrix(10, 3), b in proptest::collection::vec(-1.0f64..1.0, 10)) {
        // Skip the measure-zero rank-deficient cases.
        let Ok(x) = lstsq(&a, &b) else { return Ok(()); };
        // Gradient of ||Ax-b||^2 is 2 A'(Ax-b): must vanish.
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let g = a.t_matvec(&r).unwrap();
        for v in g {
            prop_assert!(v.abs() < 1e-8, "gradient component {v}");
        }
    }

    #[test]
    fn gram_is_psd(a in matrix(6, 4)) {
        let eig = SymmetricEigen::new(&a.gram()).unwrap();
        prop_assert!(eig.min() > -1e-10);
    }

    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right).unwrap() < 1e-12);
    }

    #[test]
    fn transpose_of_product(a in matrix(3, 4), b in matrix(4, 3)) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-12);
    }
}
