//! Householder QR factorization and least-squares solve. The numerically
//! robust alternative to the normal equations when the design matrix is
//! ill-conditioned (e.g. nearly-coplanar gradient direction sets in the
//! DW-MRI fit).

// Triangular factorizations update matrices in place through index
// arithmetic; iterator rewrites of these loops obscure the linear algebra.
#![allow(clippy::needless_range_loop)]

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Compact Householder QR of an `m × n` matrix with `m >= n`.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors below the diagonal, `R` on and above it.
    qr: Matrix,
    /// Scalar `beta` of each reflector.
    betas: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Qr {
    /// Factor `A = Q·R`.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                context: "qr: requires rows >= cols",
            });
        }
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector annihilating qr[k+1.., k].
            let mut norm2 = 0.0;
            for i in k..m {
                norm2 += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm2.sqrt();
            if norm == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // v = [v0, qr[k+1.., k]]; beta = 2 / (v'v)
            let mut vtv = v0 * v0;
            for i in k + 1..m {
                vtv += qr[(i, k)] * qr[(i, k)];
            }
            let beta = if vtv == 0.0 { 0.0 } else { 2.0 / vtv };
            // Apply (I - beta v v') to the trailing columns only; column k
            // itself becomes [alpha, 0, …, 0] and its below-diagonal slots
            // keep the reflector tail, so it must not be overwritten here.
            for j in k + 1..n {
                let mut dot = v0 * qr[(k, j)];
                for i in k + 1..m {
                    dot += qr[(i, k)] * qr[(i, j)];
                }
                let w = beta * dot;
                qr[(k, j)] -= w * v0;
                for i in k + 1..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= w * vik;
                }
            }
            // Store the reflector: diag gets alpha (R), below-diag keeps v.
            qr[(k, k)] = alpha;
            // v0 is stored implicitly via betas: we renormalize v so v0 = 1.
            if v0 != 0.0 {
                for i in k + 1..m {
                    qr[(i, k)] /= v0;
                }
                betas[k] = beta * v0 * v0;
            } else {
                betas[k] = 0.0;
            }
        }
        Ok(Self {
            qr,
            betas,
            rows: m,
            cols: n,
        })
    }

    /// Apply `Qᵀ` to a vector of length `rows`.
    fn apply_qt(&self, b: &mut [f64]) {
        for k in 0..self.cols {
            if self.betas[k] == 0.0 {
                continue;
            }
            // v = [1, qr[k+1.., k]]
            let mut dot = b[k];
            for i in k + 1..self.rows {
                dot += self.qr[(i, k)] * b[i];
            }
            let w = self.betas[k] * dot;
            b[k] -= w;
            for i in k + 1..self.rows {
                b[i] -= w * self.qr[(i, k)];
            }
        }
    }

    /// Solve the least-squares problem `min ‖A·x - b‖₂`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "qr solve: rhs length",
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back substitution with R. A diagonal entry at round-off level
        // relative to the largest one signals rank deficiency.
        let n = self.cols;
        let max_diag = (0..n).map(|i| self.qr[(i, i)].abs()).fold(0.0f64, f64::max);
        let tol = max_diag * 1e-12;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in i + 1..n {
                sum -= self.qr[(i, j)] * x[j];
            }
            let rii = self.qr[(i, i)];
            if rii.abs() <= tol {
                return Err(LinalgError::Singular);
            }
            x[i] = sum / rii;
        }
        Ok(x)
    }

    /// Apply `Q` to a vector of length `rows` (the stored reflectors in
    /// reverse order — each Householder factor is its own transpose).
    fn apply_q(&self, b: &mut [f64]) {
        for k in (0..self.cols).rev() {
            if self.betas[k] == 0.0 {
                continue;
            }
            let mut dot = b[k];
            for i in k + 1..self.rows {
                dot += self.qr[(i, k)] * b[i];
            }
            let w = self.betas[k] * dot;
            b[k] -= w;
            for i in k + 1..self.rows {
                b[i] -= w * self.qr[(i, k)];
            }
        }
    }

    /// The thin orthogonal factor `Q` (`rows × cols`), materialized by
    /// applying the stored reflectors to identity columns. Needed when the
    /// caller must rotate by `Q` explicitly (e.g. the QRST tensor
    /// eigensolver's orthogonal-similarity step) rather than just solve.
    pub fn q(&self) -> Matrix {
        let mut q = Matrix::zeros(self.rows, self.cols);
        let mut col = vec![0.0; self.rows];
        for j in 0..self.cols {
            for v in col.iter_mut() {
                *v = 0.0;
            }
            col[j] = 1.0;
            self.apply_q(&mut col);
            for i in 0..self.rows {
                q[(i, j)] = col[i];
            }
        }
        q
    }

    /// The upper-triangular factor `R` (`cols × cols`).
    pub fn r(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.cols, |i, j| {
            if j >= i {
                self.qr[(i, j)]
            } else {
                0.0
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_solve_recovers_solution() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = Qr::new(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn overdetermined_consistent_system() {
        // 5 equations, 2 unknowns, consistent.
        let a = Matrix::from_fn(5, 2, |i, j| ((i + 1) as f64).powi(j as i32 + 1));
        let x_true = vec![2.0, -0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = Qr::new(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-11);
        }
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::from_fn(8, 3, |_, _| rng.gen_range(-1.0..1.0));
        let b: Vec<f64> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x = Qr::new(&a).unwrap().solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let atr = a.t_matvec(&r).unwrap();
        for v in atr {
            assert!(v.abs() < 1e-10, "normal-equations residual {v}");
        }
    }

    #[test]
    fn r_is_upper_triangular_and_reconstructs_gram() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(10);
        let a = Matrix::from_fn(6, 4, |_, _| rng.gen_range(-1.0..1.0));
        let qr = Qr::new(&a).unwrap();
        let r = qr.r();
        for i in 0..4 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
        // R'R == A'A.
        let rtr = r.transpose().matmul(&r).unwrap();
        let ata = a.gram();
        assert!(rtr.max_abs_diff(&ata).unwrap() < 1e-10);
    }

    #[test]
    fn q_is_orthogonal_and_reconstructs_a() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        for (rows, cols) in [(4, 4), (6, 3)] {
            let a = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0));
            let qr = Qr::new(&a).unwrap();
            let q = qr.q();
            assert_eq!((q.rows(), q.cols()), (rows, cols));
            // Q'Q == I.
            let qtq = q.transpose().matmul(&q).unwrap();
            assert!(qtq.max_abs_diff(&Matrix::identity(cols)).unwrap() < 1e-12);
            // Q R == A.
            let recon = q.matmul(&qr.r()).unwrap();
            assert!(recon.max_abs_diff(&a).unwrap() < 1e-12);
        }
    }

    #[test]
    fn rejects_underdetermined() {
        assert!(Qr::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn singular_matrix_detected_on_solve() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 2.0, 4.0, 3.0, 6.0]); // rank 1
        let qr = Qr::new(&a).unwrap();
        assert!(matches!(
            qr.solve(&[1.0, 1.0, 1.0]),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn rhs_length_checked() {
        let qr = Qr::new(&Matrix::identity(3)).unwrap();
        assert!(qr.solve(&[1.0]).is_err());
    }

    #[test]
    fn agrees_with_cholesky_on_well_conditioned_problem() {
        use crate::cholesky::Cholesky;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let a = Matrix::from_fn(10, 4, |_, _| rng.gen_range(-1.0..1.0));
        let b: Vec<f64> = (0..10).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x_qr = Qr::new(&a).unwrap().solve(&b).unwrap();
        // Normal equations path.
        let g = a.gram();
        let atb = a.t_matvec(&b).unwrap();
        let x_ne = Cholesky::new(&g).unwrap().solve(&atb).unwrap();
        for (q, n) in x_qr.iter().zip(&x_ne) {
            assert!((q - n).abs() < 1e-8);
        }
    }
}
