//! # linalg — small dense linear algebra substrate
//!
//! Self-contained dense linear algebra for the small problems that arise in
//! this workspace (dimensions are a handful, not thousands):
//!
//! * [`Matrix`] — a row-major dense matrix with the usual products and norms;
//! * [`cholesky`] — SPD factorization and solves, used by the least-squares
//!   fit of DW-MRI tensors;
//! * [`jacobi`] — the cyclic Jacobi eigensolver for symmetric matrices, used
//!   to classify tensor eigenpairs via the projected Hessian;
//! * [`mod@lstsq`] — linear least squares via the normal equations;
//! * [`lu`] — LU with partial pivoting for general square systems;
//! * [`qr`] — Householder QR, the backup path for ill-conditioned systems.
//!
//! Everything works in `f64`; these routines are off the hot path (fitting
//! and classification, not the SS-HOPM inner loop).

#![deny(missing_docs)]

pub mod cholesky;
pub mod jacobi;
pub mod lstsq;
pub mod lu;
pub mod matrix;
pub mod qr;

pub use cholesky::Cholesky;
pub use jacobi::SymmetricEigen;
pub use lstsq::lstsq;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;

/// Errors from the linear algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix dimensions incompatible with the requested operation.
    DimensionMismatch {
        /// Short description of what was expected.
        context: &'static str,
    },
    /// The matrix was not positive definite (Cholesky pivot failed).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// An iterative method failed to converge within its sweep limit.
    NoConvergence {
        /// Number of sweeps performed.
        sweeps: usize,
    },
    /// The matrix was (numerically) singular.
    Singular,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite (pivot {pivot})")
            }
            LinalgError::NoConvergence { sweeps } => {
                write!(f, "no convergence after {sweeps} sweeps")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
