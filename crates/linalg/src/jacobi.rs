//! Cyclic Jacobi eigensolver for real symmetric matrices.
//!
//! Jacobi is the right tool here: the matrices are tiny (`n×n` with `n` the
//! tensor dimension, typically 3), it is unconditionally stable, and it
//! delivers full eigenvector matrices. Used to classify SS-HOPM fixed points
//! via the spectrum of the projected Hessian (Kolda & Mayo, Theorem 3.6:
//! attracting ⇔ the projected Hessian is negative/positive definite on the
//! tangent space).

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Eigendecomposition `A = V·diag(λ)·Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors as matrix columns, ordered like
    /// `eigenvalues`.
    pub eigenvectors: Matrix,
}

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 64;

impl SymmetricEigen {
    /// Compute the eigendecomposition of a symmetric matrix.
    ///
    /// The input is symmetrized as `(A + Aᵀ)/2` to absorb round-off; if the
    /// asymmetry exceeds `1e-8 * ‖A‖_F` an error is returned instead.
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                context: "eigen: matrix not square",
            });
        }
        let n = a.rows();
        let scale = a.frobenius_norm().max(1e-300);
        let mut worst_asym: f64 = 0.0;
        for i in 0..n {
            for j in 0..i {
                worst_asym = worst_asym.max((a[(i, j)] - a[(j, i)]).abs());
            }
        }
        if worst_asym > 1e-8 * scale {
            return Err(LinalgError::DimensionMismatch {
                context: "eigen: matrix not symmetric",
            });
        }
        let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let mut v = Matrix::identity(n);

        for sweep in 0..MAX_SWEEPS {
            // Off-diagonal Frobenius norm.
            let mut off = 0.0;
            for i in 0..n {
                for j in i + 1..n {
                    off += 2.0 * m[(i, j)] * m[(i, j)];
                }
            }
            if off.sqrt() <= 1e-14 * scale {
                return Ok(Self::sorted(m, v, n));
            }
            let _ = sweep;
            for p in 0..n {
                for q in p + 1..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= 1e-300 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    // Stable rotation computation (Golub & Van Loan §8.5).
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        1.0 / (theta - (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Apply the rotation to rows/cols p and q of m.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        Err(LinalgError::NoConvergence { sweeps: MAX_SWEEPS })
    }

    fn sorted(m: Matrix, v: Matrix, n: usize) -> Self {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| m[(a, a)].total_cmp(&m[(b, b)]));
        let eigenvalues: Vec<f64> = idx.iter().map(|&i| m[(i, i)]).collect();
        let eigenvectors = Matrix::from_fn(n, n, |r, c| v[(r, idx[c])]);
        Self {
            eigenvalues,
            eigenvectors,
        }
    }

    /// Smallest eigenvalue.
    pub fn min(&self) -> f64 {
        self.eigenvalues[0]
    }

    /// Largest eigenvalue.
    pub fn max(&self) -> f64 {
        self.eigenvalues[self.eigenvalues.len() - 1]
    }

    /// Spectral radius `max |λ|`.
    pub fn spectral_radius(&self) -> f64 {
        self.eigenvalues.iter().map(|l| l.abs()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_decomposition(a: &Matrix, eig: &SymmetricEigen, tol: f64) {
        let n = a.rows();
        // A v_i == lambda_i v_i for every column i.
        for i in 0..n {
            let vi: Vec<f64> = (0..n).map(|r| eig.eigenvectors[(r, i)]).collect();
            let av = a.matvec(&vi).unwrap();
            for r in 0..n {
                assert!(
                    (av[r] - eig.eigenvalues[i] * vi[r]).abs() < tol,
                    "column {i}, row {r}"
                );
            }
        }
        // Orthonormality.
        let vtv = eig.eigenvectors.gram();
        assert!(vtv.max_abs_diff(&Matrix::identity(n)).unwrap() < tol);
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = -1.0;
        a[(2, 2)] = 2.0;
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.eigenvalues, vec![-1.0, 2.0, 3.0]);
        check_decomposition(&a, &eig, 1e-12);
    }

    #[test]
    fn known_2x2_case() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 3.0).abs() < 1e-12);
        check_decomposition(&a, &eig, 1e-12);
    }

    #[test]
    fn random_symmetric_matrices_decompose() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 2 + (seed as usize % 6);
            let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
            let a = Matrix::from_fn(n, n, |i, j| 0.5 * (b[(i, j)] + b[(j, i)]));
            let eig = SymmetricEigen::new(&a).unwrap();
            check_decomposition(&a, &eig, 1e-10);
            // Trace equals sum of eigenvalues.
            let tr: f64 = (0..n).map(|i| a[(i, i)]).sum();
            let sum: f64 = eig.eigenvalues.iter().sum();
            assert!((tr - sum).abs() < 1e-10);
        }
    }

    #[test]
    fn eigenvalues_are_sorted_ascending() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let b = Matrix::from_fn(5, 5, |_, _| rng.gen_range(-1.0..1.0));
        let a = Matrix::from_fn(5, 5, |i, j| 0.5 * (b[(i, j)] + b[(j, i)]));
        let eig = SymmetricEigen::new(&a).unwrap();
        for w in eig.eigenvalues.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(eig.min(), eig.eigenvalues[0]);
        assert_eq!(eig.max(), eig.eigenvalues[4]);
        assert!(eig.spectral_radius() >= eig.max().abs());
    }

    #[test]
    fn rejects_asymmetric_input() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 5.0, -5.0, 1.0]);
        assert!(SymmetricEigen::new(&a).is_err());
    }

    #[test]
    fn rejects_non_square_input() {
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn one_by_one_matrix() {
        let a = Matrix::from_vec(1, 1, vec![7.5]);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.eigenvalues, vec![7.5]);
        assert_eq!(eig.eigenvectors[(0, 0)].abs(), 1.0);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(3, 3);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.eigenvalues, vec![0.0; 3]);
        assert_eq!(eig.spectral_radius(), 0.0);
    }

    #[test]
    fn repeated_eigenvalues() {
        // 2*I has a double eigenvalue; any orthonormal basis works.
        let mut a = Matrix::identity(3);
        a[(0, 0)] = 2.0;
        a[(1, 1)] = 2.0;
        a[(2, 2)] = 5.0;
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.eigenvalues[0] - 2.0).abs() < 1e-14);
        assert!((eig.eigenvalues[1] - 2.0).abs() < 1e-14);
        assert!((eig.eigenvalues[2] - 5.0).abs() < 1e-14);
        check_decomposition(&a, &eig, 1e-12);
    }
}
