//! LU factorization with partial pivoting, for general (unsymmetric)
//! square systems — the workhorse behind the bordered Newton solves when a
//! caller prefers it over Householder QR (LU is ~2× cheaper at these sizes
//! and partial pivoting is ample for the well-scaled systems here).

// In-place elimination walks rows and columns by index; iterator rewrites
// obscure the pivoting structure.
#![allow(clippy::needless_range_loop)]

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// A packed LU factorization `P·A = L·U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    /// `L` (unit diagonal, below) and `U` (on and above) packed together.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1/-1), for determinants.
    sign: f64,
    n: usize,
}

impl Lu {
    /// Factor a square matrix. Fails with [`LinalgError::Singular`] if a
    /// pivot column is all zeros (to round-off, relative to the matrix
    /// scale).
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                context: "lu: matrix not square",
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = a.frobenius_norm().max(1e-300);

        for k in 0..n {
            // Partial pivot: largest magnitude in column k at/below row k.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in k + 1..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= 1e-14 * scale {
                return Err(LinalgError::Singular);
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in k + 1..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(Self { lu, perm, sign, n })
    }

    /// Solve `A·x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                context: "lu solve: rhs length",
            });
        }
        let n = self.n;
        // Apply permutation, then forward-substitute with unit-lower L.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut sum = y[i];
            for k in 0..i {
                sum -= self.lu[(i, k)] * y[k];
            }
            y[i] = sum;
        }
        // Back-substitute with U.
        let mut x = y;
        for i in (0..n).rev() {
            let mut sum = x[i];
            for k in i + 1..n {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of `A` (product of pivots times the permutation sign).
    pub fn det(&self) -> f64 {
        self.sign * (0..self.n).map(|i| self.lu[(i, i)]).product::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in 1..8 {
            let a = Matrix::from_fn(n, n, |i, j| {
                rng.gen_range(-1.0..1.0) + if i == j { 2.0 } else { 0.0 }
            });
            let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
            let b = a.matvec(&x_true).unwrap();
            let x = Lu::new(&a).unwrap().solve(&b).unwrap();
            for (xi, ti) in x.iter().zip(&x_true) {
                assert!((xi - ti).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // [[0, 1], [1, 0]] needs a row swap.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
        // Permutation matrix determinant is -1.
        assert!((lu.det() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn determinant_of_known_matrix() {
        // det [[2, 1], [1, 3]] = 5; det diag(2,3,4) = 24.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        assert!((Lu::new(&a).unwrap().det() - 5.0).abs() < 1e-12);
        let mut d = Matrix::zeros(3, 3);
        d[(0, 0)] = 2.0;
        d[(1, 1)] = 3.0;
        d[(2, 2)] = 4.0;
        assert!((Lu::new(&d).unwrap().det() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular)));
    }

    #[test]
    fn non_square_rejected() {
        assert!(Lu::new(&Matrix::zeros(2, 3)).is_err());
        let lu = Lu::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn agrees_with_qr_on_random_systems() {
        use crate::qr::Qr;
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::from_fn(6, 6, |_, _| rng.gen_range(-1.0..1.0));
        let b: Vec<f64> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x_lu = Lu::new(&a).unwrap().solve(&b).unwrap();
        let x_qr = Qr::new(&a).unwrap().solve(&b).unwrap();
        for (p, q) in x_lu.iter().zip(&x_qr) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn unsymmetric_systems_supported() {
        // The bordered Newton Jacobian is unsymmetric; check a shaped case.
        let a = Matrix::from_vec(3, 3, vec![2.0, 0.5, -1.0, 0.3, 1.5, 0.0, 1.0, 0.0, 0.0]);
        let x_true = vec![1.0, 2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = Lu::new(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }
}
