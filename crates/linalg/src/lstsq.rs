//! Linear least squares `min ‖A·x − b‖₂` via the normal equations with a QR
//! fallback. The normal equations are fast and fine for the well-conditioned
//! design matrices produced by spread-out gradient direction sets; if the
//! Gram matrix fails to factor, the Householder QR path is used instead.

use crate::cholesky::Cholesky;
use crate::matrix::Matrix;
use crate::qr::Qr;
use crate::{LinalgError, Result};

/// Solve the least-squares problem `min ‖A·x − b‖₂` for `A` with
/// `rows >= cols`.
///
/// Tries `AᵀA·x = Aᵀb` via Cholesky first; falls back to Householder QR if
/// the Gram matrix is not numerically positive definite.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            context: "lstsq: rhs length != rows",
        });
    }
    if a.rows() < a.cols() {
        return Err(LinalgError::DimensionMismatch {
            context: "lstsq: underdetermined (rows < cols)",
        });
    }
    let gram = a.gram();
    let atb = a.t_matvec(b)?;
    match Cholesky::new(&gram) {
        Ok(ch) => ch.solve(&atb),
        Err(LinalgError::NotPositiveDefinite { .. }) => Qr::new(a)?.solve(b),
        Err(e) => Err(e),
    }
}

/// Residual norm `‖A·x − b‖₂` of a candidate solution.
pub fn residual_norm(a: &Matrix, x: &[f64], b: &[f64]) -> Result<f64> {
    let ax = a.matvec(x)?;
    if b.len() != ax.len() {
        return Err(LinalgError::DimensionMismatch {
            context: "residual_norm: rhs length",
        });
    }
    Ok(ax
        .iter()
        .zip(b)
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_system_is_solved_exactly() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 4.0]);
        let x = lstsq(&a, &[6.0, 8.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_noisy_fit_minimizes_residual() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::from_fn(20, 3, |_, _| rng.gen_range(-1.0..1.0));
        let x_true = vec![1.0, -1.0, 0.5];
        let mut b = a.matvec(&x_true).unwrap();
        for e in &mut b {
            *e += rng.gen_range(-0.01..0.01);
        }
        let x = lstsq(&a, &b).unwrap();
        // Perturbing the solution must not decrease the residual.
        let base = residual_norm(&a, &x, &b).unwrap();
        for d in 0..3 {
            let mut xp = x.clone();
            xp[d] += 1e-3;
            assert!(residual_norm(&a, &xp, &b).unwrap() >= base);
            xp[d] -= 2e-3;
            assert!(residual_norm(&a, &xp, &b).unwrap() >= base);
        }
    }

    #[test]
    fn rank_deficient_falls_back_or_errors_cleanly() {
        // Two identical columns: Gram is singular. Cholesky fails, QR then
        // reports Singular — either way we must not panic or return garbage.
        let a = Matrix::from_vec(4, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]);
        let res = lstsq(&a, &[1.0, 2.0, 3.0, 4.0]);
        assert!(matches!(
            res,
            Err(LinalgError::Singular) | Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn underdetermined_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(lstsq(&a, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn rhs_length_rejected() {
        let a = Matrix::identity(3);
        assert!(lstsq(&a, &[0.0, 0.0]).is_err());
        assert!(residual_norm(&a, &[0.0; 3], &[0.0; 2]).is_err());
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Matrix::from_fn(5, 5, |i, j| {
            if i == j {
                2.0
            } else {
                rng.gen_range(-0.1..0.1)
            }
        });
        let x_true: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = lstsq(&a, &b).unwrap();
        assert!(residual_norm(&a, &x, &b).unwrap() < 1e-10);
    }
}
