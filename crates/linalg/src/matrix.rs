//! Dense row-major matrices with the handful of operations the workspace
//! needs. Dimensions here are tiny (n ≤ a few dozen), so clarity beats
//! blocking and the compiler's autovectorizer does the rest.

use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// The zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data buffer.
    ///
    /// `data.len() == rows * cols` is a debug-checked precondition; a short
    /// buffer in release builds still panics on the first out-of-range
    /// element access.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        debug_assert_eq!(
            data.len(),
            rows * cols,
            "matrix buffer length must be rows*cols"
        );
        Self { rows, cols, data }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major data slice.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-vector product `A·x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "matvec: x.len() != cols",
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Matrix product `A·B`.
    pub fn matmul(&self, b: &Matrix) -> Result<Matrix> {
        if self.cols != b.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "matmul: A.cols != B.rows",
            });
        }
        let mut out = Matrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    out[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Gram matrix `Aᵀ·A` (always square `cols × cols`, symmetric PSD).
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    out[(i, j)] += ri * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                out[(i, j)] = out[(j, i)];
            }
        }
        out
    }

    /// `Aᵀ·b` for a right-hand side of length `rows`.
    pub fn t_matvec(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "t_matvec: b.len() != rows",
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, &br) in b.iter().enumerate() {
            for (j, &a) in self.row(r).iter().enumerate() {
                out[j] += a * br;
            }
        }
        Ok(out)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry difference against another matrix of the same
    /// shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "max_abs_diff: shapes differ",
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// True if `|A - Aᵀ|` is entrywise below `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..i {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let i3 = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(i3.matvec(&x).unwrap(), x);
    }

    #[test]
    fn matvec_hand_case() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = a.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn matmul_hand_case() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let c = a.matmul(&Matrix::identity(3)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(2, 4, |i, j| (i + 10 * j) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 4);
    }

    #[test]
    fn gram_matches_explicit_ata() {
        let a = Matrix::from_fn(4, 3, |i, j| ((i * 3 + j) as f64).sin());
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.max_abs_diff(&explicit).unwrap() < 1e-12);
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn t_matvec_matches_transpose_matvec() {
        let a = Matrix::from_fn(4, 2, |i, j| (i + j) as f64);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let direct = a.t_matvec(&b).unwrap();
        let via_t = a.transpose().matvec(&b).unwrap();
        assert_eq!(direct, via_t);
    }

    #[test]
    fn dimension_errors() {
        let a = Matrix::zeros(2, 3);
        assert!(a.matvec(&[1.0, 2.0]).is_err());
        assert!(a.matmul(&Matrix::zeros(2, 2)).is_err());
        assert!(a.t_matvec(&[1.0]).is_err());
        assert!(a.max_abs_diff(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn frobenius_norm_hand_case() {
        let a = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn symmetry_checks() {
        let s = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 5.0]);
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.1, 5.0]);
        assert!(!ns.is_symmetric(1e-3));
        assert!(ns.is_symmetric(0.2));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn row_access() {
        let mut a = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        assert_eq!(a.row(1), &[2.0, 3.0]);
        a.row_mut(1)[0] = 9.0;
        assert_eq!(a[(1, 0)], 9.0);
    }

    #[test]
    fn display_renders_rows() {
        let a = Matrix::identity(2);
        let s = a.to_string();
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    #[should_panic]
    fn from_vec_length_mismatch_panics() {
        Matrix::from_vec(2, 2, vec![1.0; 3]);
    }
}
