//! Cholesky factorization `A = L·Lᵀ` of symmetric positive-definite
//! matrices, with forward/back substitution solves. This is the solver
//! behind the DW-MRI normal-equations tensor fit.

// Triangular factorizations update matrices in place through index
// arithmetic; iterator rewrites of these loops obscure the linear algebra.
#![allow(clippy::needless_range_loop)]

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// The lower-triangular Cholesky factor of an SPD matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    /// Lower triangle of `L`, row-major, including the diagonal.
    l: Matrix,
}

impl Cholesky {
    /// Factor an SPD matrix. Fails with [`LinalgError::NotPositiveDefinite`]
    /// if any pivot is non-positive (within a small relative guard).
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                context: "cholesky: matrix not square",
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { n, l })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A·x = b` via `L·y = b`, `Lᵀ·x = y`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                context: "cholesky solve: rhs length",
            });
        }
        let n = self.n;
        // Forward substitution.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Back substitution with L^T.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` (twice the log of the product of pivots).
    pub fn log_det(&self) -> f64 {
        2.0 * (0..self.n).map(|i| self.l[(i, i)].ln()).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_from_seed(n: usize, seed: u64) -> Matrix {
        // B^T B + n I is SPD.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let mut g = b.gram();
        for i in 0..n {
            g[(i, i)] += n as f64;
        }
        g
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd_from_seed(5, 1);
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.factor();
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd_from_seed(6, 2);
        let x_true: Vec<f64> = (0..6).map(|i| (i as f64) - 2.5).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn identity_solve_is_identity() {
        let ch = Cholesky::new(&Matrix::identity(4)).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(ch.solve(&b).unwrap(), b);
        assert!((ch.log_det()).abs() < 1e-15);
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::new(&a).is_err());
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let ch = Cholesky::new(&Matrix::identity(3)).unwrap();
        assert!(ch.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn log_det_matches_known_value() {
        // diag(2, 3, 4): det = 24.
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 2.0;
        a[(1, 1)] = 3.0;
        a[(2, 2)] = 4.0;
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.log_det() - 24.0f64.ln()).abs() < 1e-12);
    }
}
