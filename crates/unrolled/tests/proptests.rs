//! Property tests: the generated straight-line kernels must agree with the
//! general loop kernels on arbitrary tensors and vectors, for every
//! generated shape.

use proptest::prelude::*;
use symtensor::kernels::{axm, axm1};
use symtensor::multinomial::num_unique_entries;
use symtensor::{SymTensor, TensorKernels};
use unrolled::{UnrolledKernels, GENERATED_SHAPES};

fn shape_index() -> impl Strategy<Value = usize> {
    0..GENERATED_SHAPES.len()
}

proptest! {
    #[test]
    fn unrolled_axm_equals_general(
        idx in shape_index(),
        seed_vals in proptest::collection::vec(-1.0f64..1.0, 128),
        seed_x in proptest::collection::vec(-2.0f64..2.0, 8),
    ) {
        let (m, n) = GENERATED_SHAPES[idx];
        let u = num_unique_entries(m, n) as usize;
        prop_assume!(seed_vals.len() >= u && seed_x.len() >= n);
        let a = SymTensor::from_values(m, n, seed_vals[..u].to_vec()).unwrap();
        let x = &seed_x[..n];
        let k = UnrolledKernels::for_shape(m, n).unwrap();
        let want = axm(&a, x).unwrap();
        let got = TensorKernels::axm(&k, a.view(), x).unwrap();
        let scale = 1.0 + want.abs();
        prop_assert!((got - want).abs() < 1e-9 * scale, "[{m},{n}]");
    }

    #[test]
    fn unrolled_axm1_equals_general(
        idx in shape_index(),
        seed_vals in proptest::collection::vec(-1.0f64..1.0, 128),
        seed_x in proptest::collection::vec(-2.0f64..2.0, 8),
    ) {
        let (m, n) = GENERATED_SHAPES[idx];
        let u = num_unique_entries(m, n) as usize;
        prop_assume!(seed_vals.len() >= u && seed_x.len() >= n);
        let a = SymTensor::from_values(m, n, seed_vals[..u].to_vec()).unwrap();
        let x = &seed_x[..n];
        let k = UnrolledKernels::for_shape(m, n).unwrap();
        let mut want = vec![0.0; n];
        let mut got = vec![0.0; n];
        axm1(&a, x, &mut want).unwrap();
        TensorKernels::axm1(&k, a.view(), x, &mut got).unwrap();
        for j in 0..n {
            let scale = 1.0 + want[j].abs();
            prop_assert!((got[j] - want[j]).abs() < 1e-9 * scale, "[{m},{n}] j={j}");
        }
    }

    #[test]
    fn unrolled_respects_zero_components(idx in shape_index(), zero_at in 0usize..8) {
        // Zeros in x exercise the "divide one factor out" structure.
        let (m, n) = GENERATED_SHAPES[idx];
        let u = num_unique_entries(m, n) as usize;
        let a = SymTensor::from_values(m, n, (0..u).map(|i| i as f64 * 0.1 - 0.5).collect()).unwrap();
        let mut x = vec![0.7f64; n];
        x[zero_at % n] = 0.0;
        let k = UnrolledKernels::for_shape(m, n).unwrap();
        let mut want = vec![0.0; n];
        let mut got = vec![0.0; n];
        axm1(&a, &x, &mut want).unwrap();
        TensorKernels::axm1(&k, a.view(), &x, &mut got).unwrap();
        for j in 0..n {
            prop_assert!((got[j] - want[j]).abs() < 1e-10, "[{m},{n}] j={j}");
        }
    }
}
