//! # unrolled — compile-time fully-unrolled symmetric tensor kernels
//!
//! The paper's Section V-D optimization: for a fixed tensor shape `(m, n)`,
//! unroll the `A·xᵐ` and `A·xᵐ⁻¹` loops completely so that
//!
//! * the input and output vectors live in locals ("register variables"),
//! * index representations and multinomial coefficients are resolved at
//!   code-generation time and folded into the instruction stream,
//! * the compiler sees pure straight-line FP code with full
//!   instruction-level parallelism and no indirection.
//!
//! The generation happens in `build.rs` (the analogue of the paper's
//! compile-time CUDA code generation); this crate wraps the generated
//! functions in the [`symtensor::TensorKernels`] interface so the SS-HOPM
//! driver and the benchmark harness can swap them in transparently. The
//! paper reports 8.5× (1-core CPU) to 18.7× (GPU) speedups from exactly
//! this transformation; see `bench/` for our reproduction.
//!
//! ```
//! use symtensor::{SymTensor, TensorKernels};
//! use unrolled::UnrolledKernels;
//!
//! let a = SymTensor::<f32>::from_fn(4, 3, |c| c.rank() as f32);
//! let k = UnrolledKernels::for_shape(4, 3).expect("(4,3) is generated");
//! let x = [0.6f32, 0.0, 0.8];
//! let s = k.axm(a.view(), &x).unwrap();
//! assert!(s.is_finite());
//! ```

#![deny(missing_docs)]

include!(concat!(env!("OUT_DIR"), "/generated.rs"));

use symtensor::{Error, Result, Scalar, SymTensorRef, TensorKernels};

/// A [`TensorKernels`] implementation backed by the generated straight-line
/// kernels for one specific shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnrolledKernels {
    m: usize,
    n: usize,
}

impl UnrolledKernels {
    /// Look up the unrolled kernels for shape `(m, n)`. Returns `None` if
    /// that shape was not in the generation list ([`GENERATED_SHAPES`]).
    pub fn for_shape(m: usize, n: usize) -> Option<Self> {
        GENERATED_SHAPES.contains(&(m, n)).then_some(Self { m, n })
    }

    /// The shape this instance dispatches to.
    pub fn shape(&self) -> (usize, usize) {
        (self.m, self.n)
    }
}

fn check_shape<S: Scalar>(a: &SymTensorRef<'_, S>, m: usize, n: usize) -> Result<()> {
    if (a.order(), a.dim()) == (m, n) {
        Ok(())
    } else {
        Err(Error::ShapeMismatch {
            expected: (m, n),
            found: (a.order(), a.dim()),
        })
    }
}

impl<S: Scalar> TensorKernels<S> for UnrolledKernels {
    fn axm(&self, a: SymTensorRef<'_, S>, x: &[S]) -> Result<S> {
        check_shape(&a, self.m, self.n)?;
        // The shape was validated at construction, so the dispatch hit
        // cannot miss; report a mismatch rather than unwrapping anyway.
        dispatch_axm(self.m, self.n, a.values(), x).ok_or(Error::ShapeMismatch {
            expected: (self.m, self.n),
            found: (a.order(), a.dim()),
        })
    }

    fn axm1(&self, a: SymTensorRef<'_, S>, x: &[S], y: &mut [S]) -> Result<()> {
        check_shape(&a, self.m, self.n)?;
        if dispatch_axm1(self.m, self.n, a.values(), x, y) {
            Ok(())
        } else {
            Err(Error::ShapeMismatch {
                expected: (self.m, self.n),
                found: (a.order(), a.dim()),
            })
        }
    }

    fn name(&self) -> &'static str {
        "unrolled"
    }
}

/// The common-subexpression-eliminated variant of [`UnrolledKernels`]:
/// powers `x_iᵏ` are computed once per call and shared across terms — the
/// optimization the paper's Section V-D discusses ("reduce the flop count
/// but also introduce dependencies in the unrolled instructions"). Whether
/// it wins depends on how the target trades instruction count against
/// instruction-level parallelism; the `ablations` bench measures it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CseUnrolledKernels {
    m: usize,
    n: usize,
}

impl CseUnrolledKernels {
    /// Look up the CSE kernels for shape `(m, n)`; `None` if not generated.
    pub fn for_shape(m: usize, n: usize) -> Option<Self> {
        GENERATED_SHAPES.contains(&(m, n)).then_some(Self { m, n })
    }

    /// The shape this instance dispatches to.
    pub fn shape(&self) -> (usize, usize) {
        (self.m, self.n)
    }
}

impl<S: Scalar> TensorKernels<S> for CseUnrolledKernels {
    fn axm(&self, a: SymTensorRef<'_, S>, x: &[S]) -> Result<S> {
        check_shape(&a, self.m, self.n)?;
        dispatch_axm_cse(self.m, self.n, a.values(), x).ok_or(Error::ShapeMismatch {
            expected: (self.m, self.n),
            found: (a.order(), a.dim()),
        })
    }

    fn axm1(&self, a: SymTensorRef<'_, S>, x: &[S], y: &mut [S]) -> Result<()> {
        check_shape(&a, self.m, self.n)?;
        if dispatch_axm1_cse(self.m, self.n, a.values(), x, y) {
            Ok(())
        } else {
            Err(Error::ShapeMismatch {
                expected: (self.m, self.n),
                found: (a.order(), a.dim()),
            })
        }
    }

    fn name(&self) -> &'static str {
        "unrolled-cse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use symtensor::kernels::{axm, axm1};
    use symtensor::SymTensor;

    fn random_sym(m: usize, n: usize, seed: u64) -> SymTensor<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        SymTensor::random(m, n, &mut rng)
    }

    fn random_unit(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..=1.0)).collect();
        symtensor::scalar::normalize(&mut v);
        v
    }

    #[test]
    fn every_generated_shape_matches_general_axm() {
        for (i, &(m, n)) in GENERATED_SHAPES.iter().enumerate() {
            let a = random_sym(m, n, 1000 + i as u64);
            let x = random_unit(n, 2000 + i as u64);
            let k = UnrolledKernels::for_shape(m, n).unwrap();
            let want = axm(&a, &x).unwrap();
            let got = TensorKernels::axm(&k, a.view(), &x).unwrap();
            assert!((got - want).abs() < 1e-10, "[{m},{n}]: {got} vs {want}");
        }
    }

    #[test]
    fn every_generated_shape_matches_general_axm1() {
        for (i, &(m, n)) in GENERATED_SHAPES.iter().enumerate() {
            let a = random_sym(m, n, 3000 + i as u64);
            let x = random_unit(n, 4000 + i as u64);
            let k = UnrolledKernels::for_shape(m, n).unwrap();
            let mut want = vec![0.0; n];
            let mut got = vec![0.0; n];
            axm1(&a, &x, &mut want).unwrap();
            TensorKernels::axm1(&k, a.view(), &x, &mut got).unwrap();
            for j in 0..n {
                assert!(
                    (got[j] - want[j]).abs() < 1e-10,
                    "[{m},{n}] j={j}: {} vs {}",
                    got[j],
                    want[j]
                );
            }
        }
    }

    #[test]
    fn paper_shape_is_generated() {
        // (m=4, n=3) is the application shape the paper unrolls by hand.
        assert!(UnrolledKernels::for_shape(4, 3).is_some());
        assert!(GENERATED_SHAPES.contains(&(4, 3)));
    }

    #[test]
    fn ungenerated_shape_is_none() {
        assert!(UnrolledKernels::for_shape(7, 7).is_none());
        assert!(UnrolledKernels::for_shape(2, 2).is_none());
    }

    #[test]
    fn shape_accessor() {
        let k = UnrolledKernels::for_shape(4, 3).unwrap();
        assert_eq!(k.shape(), (4, 3));
        assert_eq!(TensorKernels::<f64>::name(&k), "unrolled");
    }

    #[test]
    fn works_in_f32() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = SymTensor::<f32>::random(4, 3, &mut rng);
        let k = UnrolledKernels::for_shape(4, 3).unwrap();
        let x = [0.6f32, 0.0, 0.8];
        let s_unrolled = TensorKernels::axm(&k, a.view(), &x).unwrap();
        let s_general = axm(&a, &x).unwrap();
        assert!((s_unrolled - s_general).abs() < 1e-5);
    }

    #[test]
    fn direct_module_call_for_paper_shape() {
        // Hand-verify a known tensor: rank-one v^(x)4 evaluates to (v.x)^4.
        let v = [0.5f64, -0.5, std::f64::consts::FRAC_1_SQRT_2];
        let a = SymTensor::rank_one(4, &v);
        let x = random_unit(3, 6);
        let d: f64 = v.iter().zip(&x).map(|(p, q)| p * q).sum();
        let got = s4_3::axm(a.values(), &x);
        assert!((got - d.powi(4)).abs() < 1e-10);
    }

    #[test]
    fn euler_identity_holds_for_unrolled_kernels() {
        for (i, &(m, n)) in GENERATED_SHAPES.iter().enumerate() {
            let a = random_sym(m, n, 5000 + i as u64);
            let x = random_unit(n, 6000 + i as u64);
            let k = UnrolledKernels::for_shape(m, n).unwrap();
            let s = TensorKernels::axm(&k, a.view(), &x).unwrap();
            let mut y = vec![0.0; n];
            TensorKernels::axm1(&k, a.view(), &x, &mut y).unwrap();
            let dot: f64 = x.iter().zip(&y).map(|(p, q)| p * q).sum();
            assert!((dot - s).abs() < 1e-9, "[{m},{n}]");
        }
    }

    #[test]
    fn shape_mismatch_is_typed_error() {
        let a = random_sym(4, 3, 7);
        let k = UnrolledKernels::for_shape(3, 3).unwrap();
        let err = TensorKernels::axm(&k, a.view(), &[1.0, 0.0, 0.0]).unwrap_err();
        assert!(matches!(
            err,
            Error::ShapeMismatch {
                expected: (3, 3),
                found: (4, 3),
            }
        ));
    }

    #[test]
    fn cse_variant_matches_plain_unrolled() {
        for (i, &(m, n)) in GENERATED_SHAPES.iter().enumerate() {
            let a = random_sym(m, n, 7000 + i as u64);
            let x = random_unit(n, 8000 + i as u64);
            let plain = UnrolledKernels::for_shape(m, n).unwrap();
            let cse = CseUnrolledKernels::for_shape(m, n).unwrap();
            let s1 = TensorKernels::axm(&plain, a.view(), &x).unwrap();
            let s2 = TensorKernels::axm(&cse, a.view(), &x).unwrap();
            assert!((s1 - s2).abs() < 1e-12 * (1.0 + s1.abs()), "[{m},{n}] axm");
            let mut y1 = vec![0.0; n];
            let mut y2 = vec![0.0; n];
            TensorKernels::axm1(&plain, a.view(), &x, &mut y1).unwrap();
            TensorKernels::axm1(&cse, a.view(), &x, &mut y2).unwrap();
            for j in 0..n {
                assert!(
                    (y1[j] - y2[j]).abs() < 1e-12 * (1.0 + y1[j].abs()),
                    "[{m},{n}] axm1 j={j}"
                );
            }
        }
        assert_eq!(
            TensorKernels::<f64>::name(&CseUnrolledKernels::for_shape(4, 3).unwrap()),
            "unrolled-cse"
        );
    }

    #[test]
    fn cse_handles_zero_components() {
        let a = random_sym(4, 3, 9000);
        let x = [0.0, 0.5, -0.5];
        let cse = CseUnrolledKernels::for_shape(4, 3).unwrap();
        let mut want = vec![0.0; 3];
        let mut got = vec![0.0; 3];
        axm1(&a, &x, &mut want).unwrap();
        TensorKernels::axm1(&cse, a.view(), &x, &mut got).unwrap();
        for j in 0..3 {
            assert!((got[j] - want[j]).abs() < 1e-12, "j={j}");
        }
    }

    #[test]
    fn axm_term_count_matches_paper() {
        // Section V-D: 15 terms for Axm at (4,3); each of the 3 output sums
        // of Axm1 has 10 terms. We verify indirectly: unique entries = 15
        // and the class count of order-3 completions is 10.
        use symtensor::multinomial::num_unique_entries;
        assert_eq!(num_unique_entries(4, 3), 15);
        assert_eq!(num_unique_entries(3, 3), 10);
    }
}
