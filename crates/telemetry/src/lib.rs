//! Structured tracing, metrics, and profiling for the tensor-eigenvalue
//! stack.
//!
//! The paper's evaluation (Tables II–III, Figure 5) is all *measurement*:
//! flop accounting, per-kernel GFLOPS, occupancy and traffic breakdowns.
//! This crate is the instrumentation layer those numbers flow through:
//!
//! * **Spans** — wall-clock timed regions ([`Telemetry::span`]) aggregated
//!   (count/total/min/max) per name, thread-safely across rayon workers,
//!   and recorded as events for chrome://tracing export.
//! * **Counters and gauges** — named monotonic counters
//!   ([`Telemetry::counter`]) and last-value gauges ([`Telemetry::gauge`]).
//! * **Histograms** — value distributions ([`Telemetry::observe`]), e.g.
//!   per-tensor solve times in a batch, aggregated into shared log2-bucket
//!   [`Histogram`]s with p50/p90/p99 quantile estimates.
//! * **Run reports** — the schema-versioned [`RunReport`] unifies one
//!   run's workload, throughput, fault, latency, and per-device stats with
//!   text, JSON, and Prometheus renderers (see [`report`]).
//! * **Sinks** — a pluggable [`Sink`] receives every event as it happens:
//!   [`NullSink`] (aggregation only), [`MemorySink`] (tests), or
//!   [`JsonLinesSink`] (one JSON object per line, machine-readable).
//! * **Exporters** — a human-readable summary report
//!   ([`Telemetry::summary`]) and a chrome://tracing-compatible trace
//!   ([`Telemetry::chrome_trace_json`]).
//!
//! A [`Telemetry`] handle is cheap to clone (an `Arc`) and the *disabled*
//! handle ([`Telemetry::disabled`]) is a `None` — every instrumentation
//! call on it is a branch on an `Option` and returns immediately, with no
//! clock read, no allocation, and no locking. Instrumentation sits at
//! batch / launch / iteration granularity, never inside `axm`/`axm1`
//! inner loops.
//!
//! ```
//! use telemetry::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! {
//!     let _span = tel.span("solve");
//!     tel.counter("iterations", 31);
//!     tel.gauge("lambda", 0.8893);
//! }
//! println!("{}", tel.summary());
//! ```

#![deny(missing_docs)]

mod convergence;
mod export;
pub mod histogram;
mod metrics;
pub mod report;
mod sink;
mod span;

pub use convergence::{ConvergenceTrace, IterationRecord};
pub use histogram::Histogram;
pub use metrics::{
    CounterSnapshot, GaugeSnapshot, HistogramSnapshot, SpanSnapshot, TelemetrySnapshot,
};
pub use report::{
    CommStats, DeviceStats, FaultStats, HostStats, KernelCacheStats, LatencyStat, RunReport,
    ThroughputStats, WorkloadStats, RUN_REPORT_SCHEMA_VERSION,
};
pub use sink::{Event, JsonLinesSink, MemorySink, NullSink, Sink};
pub use span::SpanGuard;

use metrics::State;
use parking_lot::Mutex;
use serde::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cap on retained trace events (spans + instants) so long runs cannot
/// grow memory without bound; overflow is counted, not silently dropped.
const MAX_TRACE_EVENTS: usize = 262_144;

pub(crate) struct Inner {
    epoch: Instant,
    state: Mutex<State>,
    sink: Box<dyn Sink>,
}

/// A handle to a telemetry pipeline. Clones share the same aggregation
/// state and sink. The disabled handle is inert and near-zero cost.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// The inert handle: every call is a no-op.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// An enabled pipeline aggregating in memory with no event sink.
    pub fn enabled() -> Telemetry {
        Telemetry::with_sink(Box::new(NullSink))
    }

    /// An enabled pipeline forwarding every event to `sink` (in addition
    /// to in-memory aggregation).
    pub fn with_sink(sink: Box<dyn Sink>) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
                sink,
            })),
        }
    }

    /// Whether instrumentation is live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to the named monotonic counter.
    #[inline]
    pub fn counter(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.state.lock().add_counter(name, delta);
            inner.sink.record(&Event::Counter { name, delta });
        }
    }

    /// Set the named gauge to `value` (last write wins).
    #[inline]
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.state.lock().set_gauge(name, value);
            inner.sink.record(&Event::Gauge { name, value });
        }
    }

    /// Record `value` into the named histogram.
    #[inline]
    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.state.lock().observe(name, value);
            inner.sink.record(&Event::Observation { name, value });
        }
    }

    /// Open a wall-clock span; it closes (and is recorded) when the
    /// returned guard drops. On a disabled handle this reads no clock.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard::open(self.inner.clone(), name)
    }

    /// Time a closure under a named span.
    #[inline]
    pub fn time<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let _span = self.span(name);
        f()
    }

    /// Emit a structured custom event (e.g. a profile snapshot) to the
    /// sink and retain it in the snapshot's event list.
    pub fn event(&self, name: &'static str, payload: Value) {
        if let Some(inner) = &self.inner {
            inner.state.lock().push_custom(name, payload.clone());
            inner.sink.record(&Event::Custom { name, payload });
        }
    }

    /// Record a span with *caller-supplied* timestamps instead of wall
    /// clocks: `start_us`/`duration_us` are microseconds on whatever
    /// timeline the caller models (e.g. the simulated GPU event timeline),
    /// and `thread` becomes the trace row (`tid`) — one row per stream in
    /// the chrome://tracing view. The span aggregates and exports exactly
    /// like a wall-clock one, making modeled timelines and measured host
    /// spans coexist in the same trace.
    pub fn modeled_span(&self, name: &'static str, thread: usize, start_us: f64, duration_us: f64) {
        if let Some(inner) = &self.inner {
            {
                let mut state = inner.state.lock();
                state.add_span(name, duration_us);
                state.push_trace(name, thread, start_us, duration_us, MAX_TRACE_EVENTS);
            }
            inner.sink.record(&Event::SpanClose {
                name,
                thread,
                start_us,
                duration_us,
            });
        }
    }

    /// Flush the sink (e.g. the JSON-lines writer).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }

    /// A serializable snapshot of all aggregated state.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        match &self.inner {
            Some(inner) => inner.state.lock().snapshot(inner.epoch.elapsed()),
            None => TelemetrySnapshot::default(),
        }
    }

    /// Human-readable summary report of counters, gauges, spans, and
    /// histograms.
    pub fn summary(&self) -> String {
        export::summary(&self.snapshot())
    }

    /// chrome://tracing-compatible trace JSON (load via `chrome://tracing`
    /// or <https://ui.perfetto.dev>).
    pub fn chrome_trace_json(&self) -> String {
        match &self.inner {
            Some(inner) => export::chrome_trace(&inner.state.lock()),
            None => "[]".to_owned(),
        }
    }

    pub(crate) fn record_span(inner: &Arc<Inner>, name: &'static str, started: Instant) {
        let end = Instant::now();
        let start_us = started.duration_since(inner.epoch).as_secs_f64() * 1e6;
        let duration_us = end.duration_since(started).as_secs_f64() * 1e6;
        let thread = thread_index();
        {
            let mut state = inner.state.lock();
            state.add_span(name, duration_us);
            state.push_trace(name, thread, start_us, duration_us, MAX_TRACE_EVENTS);
        }
        inner.sink.record(&Event::SpanClose {
            name,
            thread,
            start_us,
            duration_us,
        });
    }
}

static NEXT_THREAD_INDEX: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_INDEX: usize = NEXT_THREAD_INDEX.fetch_add(1, Ordering::Relaxed);
}

/// A small dense per-thread index (0, 1, 2, …) for trace attribution.
pub fn thread_index() -> usize {
    THREAD_INDEX.with(|i| *i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.counter("c", 5);
        tel.gauge("g", 1.0);
        tel.observe("h", 2.0);
        let _s = tel.span("s");
        drop(_s);
        let snap = tel.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
        assert_eq!(tel.chrome_trace_json(), "[]");
    }

    #[test]
    fn counters_and_gauges_aggregate() {
        let tel = Telemetry::enabled();
        tel.counter("iters", 3);
        tel.counter("iters", 4);
        tel.gauge("lambda", 1.0);
        tel.gauge("lambda", 2.5);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("iters"), Some(7));
        assert_eq!(snap.gauge("lambda"), Some(2.5));
    }

    #[test]
    fn spans_aggregate_across_threads() {
        let tel = Telemetry::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let tel = tel.clone();
                s.spawn(move || {
                    for _ in 0..10 {
                        let _span = tel.span("work");
                    }
                });
            }
        });
        let snap = tel.snapshot();
        let span = snap.spans.iter().find(|s| s.name == "work").unwrap();
        assert_eq!(span.count, 40);
        assert!(span.total_us >= 0.0);
        assert!(span.min_us <= span.max_us);
    }

    #[test]
    fn histogram_stats() {
        let tel = Telemetry::enabled();
        for v in [1.0, 2.0, 3.0, 10.0] {
            tel.observe("seconds", v);
        }
        let snap = tel.snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "seconds")
            .unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 10.0);
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_everything() {
        let tel = Telemetry::enabled();
        tel.counter("batch.tensors", 2);
        tel.gauge("gpu.occupancy", 0.67);
        tel.observe("tensor.seconds", 0.25);
        tel.time("phase", || ());
        let report = tel.summary();
        assert!(report.contains("batch.tensors"));
        assert!(report.contains("gpu.occupancy"));
        assert!(report.contains("tensor.seconds"));
        assert!(report.contains("phase"));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_events() {
        let tel = Telemetry::enabled();
        tel.time("outer", || tel.time("inner", || ()));
        let json = tel.chrome_trace_json();
        let value = Value::parse_json(&json).unwrap();
        let events = value.as_seq().unwrap();
        assert_eq!(events.len(), 2);
        for ev in events {
            assert_eq!(ev.get("ph").and_then(Value::as_str), Some("X"));
            assert!(ev.get("ts").and_then(Value::as_f64).is_some());
            assert!(ev.get("dur").and_then(Value::as_f64).is_some());
        }
    }

    #[test]
    fn modeled_spans_use_caller_timestamps() {
        let tel = Telemetry::enabled();
        tel.modeled_span("gpu.h2d", 3, 125.0, 40.0);
        let snap = tel.snapshot();
        let span = snap.spans.iter().find(|s| s.name == "gpu.h2d").unwrap();
        assert_eq!(span.count, 1);
        assert_eq!(span.total_us, 40.0);
        let json = tel.chrome_trace_json();
        let value = Value::parse_json(&json).unwrap();
        let ev = &value.as_seq().unwrap()[0];
        assert_eq!(ev.get("ts").and_then(Value::as_f64), Some(125.0));
        assert_eq!(ev.get("dur").and_then(Value::as_f64), Some(40.0));
        assert_eq!(ev.get("tid").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn custom_events_reach_snapshot() {
        let tel = Telemetry::enabled();
        tel.event(
            "profile",
            Value::object(vec![("gflops", Value::Float(8.5))]),
        );
        let snap = tel.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].0, "profile");
    }

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::enabled();
        let clone = tel.clone();
        clone.counter("shared", 1);
        assert_eq!(tel.snapshot().counter("shared"), Some(1));
    }
}
