//! Convergence traces: per-iteration (λ, shift, residual) records from
//! SS-HOPM solves.
//!
//! Kolda & Mayo (SS-HOPM) prove that with shift `|α| ≥ (m−1)·‖A‖_F` the
//! iterate sequence makes `λ_k` monotone (nondecreasing for the convex
//! variant). A [`ConvergenceTrace`] makes that invariant — and its
//! *violation* for α = 0 on adversarial tensors — observable.

use serde::Value;

/// One solver iteration's observables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Iteration index (0 = the initial iterate before any update).
    pub k: usize,
    /// Current Rayleigh quotient λ = A·xᵐ.
    pub lambda: f64,
    /// Shift α in effect for this iteration.
    pub alpha: f64,
    /// Eigenpair residual ‖A·xᵐ⁻¹ − λx‖ at this iterate, if computed
    /// (residuals cost an extra `axm1`; observers may skip them).
    pub residual: Option<f64>,
}

/// A per-iteration record of one SS-HOPM solve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConvergenceTrace {
    /// Records in iteration order.
    pub records: Vec<IterationRecord>,
}

impl ConvergenceTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one iteration record.
    pub fn push(&mut self, record: IterationRecord) {
        self.records.push(record);
    }

    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The λ sequence.
    pub fn lambdas(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.lambda).collect()
    }

    /// True if λ never decreases by more than `tol` between consecutive
    /// iterations (the Kolda–Mayo guarantee for a sufficient convex shift).
    pub fn is_monotone_nondecreasing(&self, tol: f64) -> bool {
        self.records
            .windows(2)
            .all(|w| w[1].lambda >= w[0].lambda - tol)
    }

    /// True if λ *decreases* by more than `tol` somewhere — evidence of
    /// the oscillation possible with an insufficient shift.
    pub fn has_decrease(&self, tol: f64) -> bool {
        self.records
            .windows(2)
            .any(|w| w[1].lambda < w[0].lambda - tol)
    }

    /// Largest single-step decrease in λ (0 if monotone).
    pub fn max_decrease(&self) -> f64 {
        self.records
            .windows(2)
            .map(|w| w[0].lambda - w[1].lambda)
            .fold(0.0, f64::max)
    }

    /// The trace as a JSON-ready [`Value`].
    pub fn to_value(&self) -> Value {
        Value::Seq(
            self.records
                .iter()
                .map(|r| {
                    Value::object(vec![
                        ("k", Value::UInt(r.k as u64)),
                        ("lambda", Value::Float(r.lambda)),
                        ("alpha", Value::Float(r.alpha)),
                        (
                            "residual",
                            r.residual.map(Value::Float).unwrap_or(Value::Null),
                        ),
                    ])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(lambdas: &[f64]) -> ConvergenceTrace {
        let mut t = ConvergenceTrace::new();
        for (k, &lambda) in lambdas.iter().enumerate() {
            t.push(IterationRecord {
                k,
                lambda,
                alpha: 0.0,
                residual: None,
            });
        }
        t
    }

    #[test]
    fn monotone_detection() {
        assert!(trace_of(&[1.0, 1.0, 1.5, 2.0]).is_monotone_nondecreasing(0.0));
        assert!(!trace_of(&[1.0, 0.5, 2.0]).is_monotone_nondecreasing(1e-9));
        assert!(trace_of(&[1.0, 1.0 - 1e-12]).is_monotone_nondecreasing(1e-9));
    }

    #[test]
    fn decrease_detection() {
        assert!(trace_of(&[1.0, 0.2]).has_decrease(1e-9));
        assert!(!trace_of(&[1.0, 2.0]).has_decrease(1e-9));
        assert!((trace_of(&[1.0, 0.25, 0.5]).max_decrease() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn serializes_with_optional_residual() {
        let mut t = trace_of(&[1.0]);
        t.records[0].residual = Some(0.125);
        let v = t.to_value();
        let first = &v.as_seq().unwrap()[0];
        assert_eq!(first.get("residual").and_then(Value::as_f64), Some(0.125));
        let empty = trace_of(&[1.0]).to_value();
        assert_eq!(
            empty.as_seq().unwrap()[0].get("residual"),
            Some(&Value::Null)
        );
    }
}
