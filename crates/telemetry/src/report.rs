//! [`RunReport`]: one schema-versioned record unifying every signal a
//! batched solve produces.
//!
//! The stack's observability signals used to live in silos — backend
//! `BatchReport`/`FaultLog` summaries, gpusim `Timeline` spans and
//! `ProfileSnapshot` occupancy numbers, and the telemetry snapshot's
//! counters and histograms. A [`RunReport`] is the unified export shape:
//! workload and throughput stats, a fault ledger ([`FaultStats`]), named
//! latency distributions ([`Histogram`] — per chunk, per stream, per
//! device), per-device occupancy/GFLOPS rows ([`DeviceStats`]), plus any
//! counters and gauges folded in from a [`TelemetrySnapshot`].
//!
//! Three renderers share the same fields, so no format can drift from
//! another: JSON (via [`serde::Serialize`], parseable back with
//! [`RunReport::parse_json`]), Prometheus text exposition
//! ([`RunReport::to_prometheus`] — the future service daemon's `/health`
//! body), and human text ([`RunReport::render_text`], whose first line,
//! [`RunReport::headline`], is exactly the one-line summary the CLI
//! prints after every solve).

use crate::histogram::Histogram;
use crate::metrics::TelemetrySnapshot;
use serde::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Version stamp written into every serialized [`RunReport`] and every
/// committed bench baseline; bump when the schema changes shape.
pub const RUN_REPORT_SCHEMA_VERSION: u64 = 1;

/// Batch size and convergence accounting of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Tensors in the batch.
    pub num_tensors: u64,
    /// Starting vectors per tensor.
    pub num_starts: u64,
    /// Individual (tensor, start) solves.
    pub total_solves: u64,
    /// Solves that met the convergence criterion.
    pub converged_solves: u64,
    /// SS-HOPM iterations summed over all solves.
    pub total_iterations: u64,
}

/// Wall-clock and flop-rate accounting of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThroughputStats {
    /// Wall-clock seconds (measured for CPU substrates, modeled for GPU).
    pub seconds: f64,
    /// Useful floating-point operations executed (FMA counted as 2).
    pub useful_flops: u64,
    /// Achieved GFLOP/s (0 for an empty or instantaneous run).
    pub gflops: f64,
    /// Tensors completed per second (0 for an empty or instantaneous run).
    pub tensors_per_second: f64,
}

/// The fault/retry/failover ledger of one run, in export form. All-zero
/// for non-resilient backends.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults the fault plan injected.
    pub injected: u64,
    /// Faults the backend detected.
    pub observed: u64,
    /// Injected faults fully recovered.
    pub recovered: u64,
    /// Injected faults that could not be recovered.
    pub failed: u64,
    /// Tensors left with no valid result.
    pub failed_tensors: u64,
    /// Launch attempts retried after a transient fault.
    pub retries: u64,
    /// Chunks moved to another device or the CPU.
    pub failovers: u64,
    /// True if any work ran on the CPU fallback.
    pub degraded: bool,
}

impl FaultStats {
    /// True when nothing fault-related happened at all.
    pub fn is_empty(&self) -> bool {
        self.injected == 0
            && self.observed == 0
            && self.failed_tensors == 0
            && self.retries == 0
            && self.failovers == 0
            && !self.degraded
    }

    /// The one-line fault summary the CLI prints; `FaultLog::summary` in
    /// the backend crate delegates here, so the text is derived from the
    /// same fields the JSON renderer serializes.
    pub fn summary_line(&self) -> String {
        format!(
            "faults: {} injected, {} observed, {} recovered, {} failed \
             ({} tensors lost), {} retries, {} failovers{}",
            self.injected,
            self.observed,
            self.recovered,
            self.failed,
            self.failed_tensors,
            self.retries,
            self.failovers,
            if self.degraded { ", degraded mode" } else { "" }
        )
    }
}

/// One named latency distribution inside a [`RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStat {
    /// Distribution name (`chunk`, `stream`, `device`, or a telemetry
    /// histogram name like `batch.tensor_seconds`).
    pub name: String,
    /// The distribution itself.
    pub histogram: Histogram,
}

/// One host's headline numbers inside a [`RunReport`] — the per-host
/// generalization of [`DeviceStats`] for cluster-sharded runs. Empty for
/// single-host backends.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostStats {
    /// Index into the cluster's host list (host 0 is the root).
    pub host_index: u64,
    /// Devices installed in this host.
    pub num_devices: u64,
    /// Tensors sharded onto this host.
    pub num_tensors: u64,
    /// Bytes shipped root→host over the NIC (0 for the root).
    pub nic_down_bytes: u64,
    /// Bytes shipped host→root over the NIC (0 for the root).
    pub nic_up_bytes: u64,
    /// Modeled NIC transfer seconds, both ways.
    pub nic_seconds: f64,
    /// NIC time plus the host's device-level makespan.
    pub seconds: f64,
}

/// Inter-node communication accounting of one run: achieved NIC traffic
/// charged against the Al Daas et al. lower bound. All-zero for
/// single-host backends.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommStats {
    /// Total bytes that crossed NICs, both directions.
    pub nic_bytes: u64,
    /// The communication lower bound for the run's problem and topology.
    pub lower_bound_bytes: u64,
    /// Achieved bytes over the bound (1.0 when the bound is zero).
    pub ratio: f64,
}

impl CommStats {
    /// True when no inter-node communication was modeled at all.
    pub fn is_empty(&self) -> bool {
        self.nic_bytes == 0 && self.lower_bound_bytes == 0
    }
}

/// Kernel-registry cache activity attributable to one run: how the kernels
/// that executed the batch were materialized (memoized in-process, loaded
/// from the on-disk artifact cache, or generated).
///
/// Plain data by design — the producing registry lives in the `kernelgen`
/// crate, which this crate must not depend on.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCacheStats {
    /// Kernel objects served from the in-process memo map.
    pub memo_hits: u64,
    /// Requests that missed the memo map.
    pub memo_misses: u64,
    /// Tapes loaded and validated from the on-disk artifact cache.
    pub disk_hits: u64,
    /// Artifact-cache lookups that missed (absent or rejected entries).
    pub disk_misses: u64,
    /// Tapes generated at runtime during the run.
    pub generated: u64,
    /// Wall-clock seconds spent generating tapes.
    pub generate_seconds: f64,
}

impl KernelCacheStats {
    /// True when the run touched no memoized or cached kernels at all.
    pub fn is_empty(&self) -> bool {
        self.memo_hits == 0
            && self.memo_misses == 0
            && self.disk_hits == 0
            && self.disk_misses == 0
            && self.generated == 0
    }

    /// Fraction of artifact-cache lookups that hit, if any were made.
    pub fn artifact_hit_rate(&self) -> Option<f64> {
        let total = self.disk_hits + self.disk_misses;
        (total > 0).then(|| self.disk_hits as f64 / total as f64)
    }

    /// The one-line rendering used by `render_text`.
    pub fn summary_line(&self) -> String {
        let rate = match self.artifact_hit_rate() {
            Some(r) => format!("{:.0}% artifact hit rate", r * 100.0),
            None => "no artifact lookups".to_string(),
        };
        format!(
            "kernel cache: {} memo hits / {} misses, {} disk hits / {} misses, \
             {} generated in {:.3} ms ({rate})",
            self.memo_hits,
            self.memo_misses,
            self.disk_hits,
            self.disk_misses,
            self.generated,
            self.generate_seconds * 1e3,
        )
    }
}

/// One device's headline numbers inside a [`RunReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceStats {
    /// Index into the backend's device list (global, host-major, for
    /// cluster backends).
    pub device_index: u64,
    /// Index of the host owning this device (0 for single-host backends).
    pub host_index: u64,
    /// Device model name.
    pub device: String,
    /// Tensors assigned to this device.
    pub num_tensors: u64,
    /// Occupancy fraction in `[0, 1]`.
    pub occupancy: f64,
    /// Achieved GFLOP/s on this device.
    pub gflops: f64,
    /// Kernel seconds on this device.
    pub seconds: f64,
    /// Host↔device transfer seconds attributed to this device.
    pub transfer_seconds: f64,
}

/// The unified, schema-versioned observability record of one batched run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Schema version ([`RUN_REPORT_SCHEMA_VERSION`] when built here).
    pub schema_version: u64,
    /// Backend label (e.g. `cpu:4`, `pipelined:gpusim:tesla-c2050:1x2`).
    pub backend: String,
    /// Kernel strategy in effect (after shape fallback).
    pub kernel: String,
    /// Solver that produced the results (e.g. `sshopm`, `geap`, `qrst`);
    /// empty when the producing layer predates solver tagging.
    pub solver: String,
    /// Batch size and convergence accounting.
    pub workload: WorkloadStats,
    /// Wall-clock and flop-rate accounting.
    pub throughput: ThroughputStats,
    /// Fault/retry/failover rates.
    pub faults: FaultStats,
    /// Named latency distributions (always includes `chunk`).
    pub latencies: Vec<LatencyStat>,
    /// Per-device occupancy/GFLOPS rows (empty for CPU substrates).
    pub devices: Vec<DeviceStats>,
    /// Per-host shard rows (empty for single-host backends).
    pub hosts: Vec<HostStats>,
    /// Inter-node communication vs. the lower bound (all-zero for
    /// single-host backends).
    pub comm: CommStats,
    /// Kernel-registry cache activity during the run (`None` when the
    /// producing layer predates the registry, or nothing was memoized).
    pub kernel_cache: Option<KernelCacheStats>,
    /// Counters folded in from a telemetry snapshot, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges folded in from a telemetry snapshot, sorted by name.
    pub gauges: Vec<(String, f64)>,
}

impl RunReport {
    /// An empty report for `backend`/`kernel` at the current schema
    /// version.
    pub fn new(backend: impl Into<String>, kernel: impl Into<String>) -> RunReport {
        RunReport {
            schema_version: RUN_REPORT_SCHEMA_VERSION,
            backend: backend.into(),
            kernel: kernel.into(),
            ..RunReport::default()
        }
    }

    /// Add (or merge into) a named latency distribution.
    pub fn push_latency(&mut self, name: impl Into<String>, histogram: Histogram) {
        let name = name.into();
        match self.latencies.iter_mut().find(|l| l.name == name) {
            Some(existing) => existing.histogram.merge(&histogram),
            None => self.latencies.push(LatencyStat { name, histogram }),
        }
    }

    /// A named latency distribution, if present.
    pub fn latency(&self, name: &str) -> Option<&Histogram> {
        self.latencies
            .iter()
            .find(|l| l.name == name)
            .map(|l| &l.histogram)
    }

    /// Fold a telemetry snapshot in: counters and gauges are copied, and
    /// every aggregated histogram (e.g. `batch.tensor_seconds`,
    /// `gpu.kernel`) becomes an additional latency distribution.
    pub fn merge_telemetry(&mut self, snap: &TelemetrySnapshot) {
        for c in &snap.counters {
            self.counters.push((c.name.clone(), c.value));
        }
        for g in &snap.gauges {
            self.gauges.push((g.name.clone(), g.value));
        }
        for h in &snap.histograms {
            self.push_latency(h.name.clone(), h.to_histogram());
        }
    }

    /// The one-line summary the CLI prints after every solve; the backend
    /// crate's `BatchReport::summary` delegates here.
    pub fn headline(&self) -> String {
        format!(
            "backend {} ({} kernel): {} tensors x {} starts, {} iterations, \
             {:.3} ms, {:.2} GFLOP/s",
            self.backend,
            self.kernel,
            self.workload.num_tensors,
            self.workload.num_starts,
            self.workload.total_iterations,
            self.throughput.seconds * 1e3,
            self.throughput.gflops
        )
    }

    /// Multi-line human-readable rendering: headline, fault line (when
    /// anything fault-related happened), latency quantiles, device rows.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headline());
        if !self.faults.is_empty() {
            let _ = writeln!(out, "{}", self.faults.summary_line());
        }
        if !self.latencies.is_empty() {
            let _ = writeln!(out, "latencies (seconds):");
            for l in &self.latencies {
                let h = &l.histogram;
                let _ = writeln!(
                    out,
                    "  {:<24} count {:>8}  p50 {:>12.6}  p90 {:>12.6}  p99 {:>12.6}  \
                     mean {:>12.6}  max {:>12.6}",
                    l.name,
                    h.count(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.mean(),
                    h.max(),
                );
            }
        }
        if !self.comm.is_empty() {
            let _ = writeln!(
                out,
                "comm: {} NIC bytes vs {} lower bound ({:.3}x)",
                self.comm.nic_bytes, self.comm.lower_bound_bytes, self.comm.ratio
            );
        }
        if let Some(kc) = self.kernel_cache.filter(|kc| !kc.is_empty()) {
            let _ = writeln!(out, "{}", kc.summary_line());
        }
        for h in &self.hosts {
            let _ = writeln!(
                out,
                "  host {}{}: {} devices, {} tensors, NIC {} B down + {} B up \
                 ({:.3} ms), total {:.3} ms",
                h.host_index,
                if h.host_index == 0 { " (root)" } else { "" },
                h.num_devices,
                h.num_tensors,
                h.nic_down_bytes,
                h.nic_up_bytes,
                h.nic_seconds * 1e3,
                h.seconds * 1e3,
            );
        }
        for d in &self.devices {
            let _ = writeln!(
                out,
                "  device {} ({}): {} tensors, occupancy {:.2}, {:.2} GFLOP/s, \
                 kernel {:.3} ms + transfer {:.3} ms",
                d.device_index,
                d.device,
                d.num_tensors,
                d.occupancy,
                d.gflops,
                d.seconds * 1e3,
                d.transfer_seconds * 1e3,
            );
        }
        out
    }

    /// Compact JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// Parse a report back from its JSON form (any schema-version-1
    /// document).
    pub fn parse_json(input: &str) -> Result<RunReport, String> {
        let value = Value::parse_json(input).map_err(|e| format!("run report: {e}"))?;
        RunReport::from_value(&value).map_err(|e| format!("run report: {e}"))
    }

    /// Prometheus text exposition (the `/health`-endpoint body): gauges
    /// for throughput/occupancy, counters for work and faults, and one
    /// `histogram`-typed family per latency distribution with cumulative
    /// `le` buckets.
    pub fn to_prometheus(&self) -> String {
        let labels = format!(
            "backend=\"{}\",kernel=\"{}\"",
            prom_label(&self.backend),
            prom_label(&self.kernel)
        );
        let mut out = String::new();
        let gauge = |out: &mut String, name: &str, help: &str, value: f64| {
            let _ = writeln!(out, "# HELP tensor_eig_{name} {help}");
            let _ = writeln!(out, "# TYPE tensor_eig_{name} gauge");
            let _ = writeln!(out, "tensor_eig_{name}{{{labels}}} {}", prom_f64(value));
        };
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP tensor_eig_{name} {help}");
            let _ = writeln!(out, "# TYPE tensor_eig_{name} counter");
            let _ = writeln!(out, "tensor_eig_{name}{{{labels}}} {value}");
        };
        gauge(
            &mut out,
            "run_seconds",
            "Wall-clock of the run (measured for CPU, modeled for GPU)",
            self.throughput.seconds,
        );
        gauge(
            &mut out,
            "run_gflops",
            "Achieved GFLOP/s",
            self.throughput.gflops,
        );
        gauge(
            &mut out,
            "run_tensors_per_second",
            "Tensors completed per second",
            self.throughput.tensors_per_second,
        );
        counter(
            &mut out,
            "run_tensors_total",
            "Tensors in the batch",
            self.workload.num_tensors,
        );
        counter(
            &mut out,
            "run_solves_total",
            "Individual (tensor, start) solves",
            self.workload.total_solves,
        );
        counter(
            &mut out,
            "run_converged_total",
            "Solves that converged",
            self.workload.converged_solves,
        );
        counter(
            &mut out,
            "run_iterations_total",
            "SS-HOPM iterations executed",
            self.workload.total_iterations,
        );
        counter(
            &mut out,
            "run_useful_flops_total",
            "Useful floating-point operations (FMA = 2)",
            self.throughput.useful_flops,
        );
        for (name, value) in [
            ("faults_injected_total", self.faults.injected),
            ("faults_observed_total", self.faults.observed),
            ("faults_recovered_total", self.faults.recovered),
            ("faults_failed_total", self.faults.failed),
            ("fault_retries_total", self.faults.retries),
            ("fault_failovers_total", self.faults.failovers),
            ("fault_lost_tensors_total", self.faults.failed_tensors),
        ] {
            counter(&mut out, name, "Fault-injection ledger", value);
        }
        gauge(
            &mut out,
            "run_degraded",
            "1 when any work ran on the CPU fallback",
            if self.faults.degraded { 1.0 } else { 0.0 },
        );
        if !self.comm.is_empty() {
            counter(
                &mut out,
                "nic_bytes_total",
                "Bytes that crossed NICs, both directions",
                self.comm.nic_bytes,
            );
            counter(
                &mut out,
                "comm_lower_bound_bytes",
                "Al Daas et al. communication lower bound",
                self.comm.lower_bound_bytes,
            );
            gauge(
                &mut out,
                "comm_ratio",
                "Achieved NIC bytes over the communication lower bound",
                self.comm.ratio,
            );
        }
        if let Some(kc) = self.kernel_cache.filter(|kc| !kc.is_empty()) {
            for (name, value) in [
                ("kernel_cache_memo_hits_total", kc.memo_hits),
                ("kernel_cache_memo_misses_total", kc.memo_misses),
                ("kernel_cache_disk_hits_total", kc.disk_hits),
                ("kernel_cache_disk_misses_total", kc.disk_misses),
                ("kernel_cache_generated_total", kc.generated),
            ] {
                counter(&mut out, name, "Kernel-registry cache ledger", value);
            }
            gauge(
                &mut out,
                "kernel_cache_generate_seconds",
                "Wall-clock seconds spent generating kernel tapes",
                kc.generate_seconds,
            );
            if let Some(rate) = kc.artifact_hit_rate() {
                gauge(
                    &mut out,
                    "kernel_cache_artifact_hit_rate",
                    "Fraction of artifact-cache lookups that hit",
                    rate,
                );
            }
        }
        for h in &self.hosts {
            let host_labels = format!("{labels},host_index=\"{}\"", h.host_index);
            let _ = writeln!(
                out,
                "# HELP tensor_eig_host_seconds NIC plus device makespan per host"
            );
            let _ = writeln!(out, "# TYPE tensor_eig_host_seconds gauge");
            let _ = writeln!(
                out,
                "tensor_eig_host_seconds{{{host_labels}}} {}",
                prom_f64(h.seconds)
            );
            let _ = writeln!(
                out,
                "# HELP tensor_eig_host_nic_bytes_total NIC bytes per host, both directions"
            );
            let _ = writeln!(out, "# TYPE tensor_eig_host_nic_bytes_total counter");
            let _ = writeln!(
                out,
                "tensor_eig_host_nic_bytes_total{{{host_labels}}} {}",
                h.nic_down_bytes + h.nic_up_bytes
            );
        }
        for d in &self.devices {
            let dev_labels = format!(
                "{labels},device=\"{}\",device_index=\"{}\"",
                prom_label(&d.device),
                d.device_index
            );
            let _ = writeln!(
                out,
                "# HELP tensor_eig_device_occupancy Occupancy fraction per device"
            );
            let _ = writeln!(out, "# TYPE tensor_eig_device_occupancy gauge");
            let _ = writeln!(
                out,
                "tensor_eig_device_occupancy{{{dev_labels}}} {}",
                prom_f64(d.occupancy)
            );
            let _ = writeln!(
                out,
                "# HELP tensor_eig_device_gflops Achieved GFLOP/s per device"
            );
            let _ = writeln!(out, "# TYPE tensor_eig_device_gflops gauge");
            let _ = writeln!(
                out,
                "tensor_eig_device_gflops{{{dev_labels}}} {}",
                prom_f64(d.gflops)
            );
        }
        let _ = writeln!(
            out,
            "# HELP tensor_eig_latency_seconds Latency distributions (per chunk / stream / device)"
        );
        let _ = writeln!(out, "# TYPE tensor_eig_latency_seconds histogram");
        for l in &self.latencies {
            let h = &l.histogram;
            let lat_labels = format!("{labels},latency=\"{}\"", prom_label(&l.name));
            let mut cumulative = 0u64;
            let top = h
                .buckets()
                .iter()
                .rposition(|&c| c > 0)
                .map_or(0, |i| i + 1);
            for (i, &c) in h.buckets().iter().take(top).enumerate() {
                cumulative += c;
                let _ = writeln!(
                    out,
                    "tensor_eig_latency_seconds_bucket{{{lat_labels},le=\"{}\"}} {cumulative}",
                    prom_f64(crate::histogram::bucket_upper_edge(i))
                );
            }
            let _ = writeln!(
                out,
                "tensor_eig_latency_seconds_bucket{{{lat_labels},le=\"+Inf\"}} {}",
                h.count()
            );
            let _ = writeln!(
                out,
                "tensor_eig_latency_seconds_sum{{{lat_labels}}} {}",
                prom_f64(h.sum())
            );
            let _ = writeln!(
                out,
                "tensor_eig_latency_seconds_count{{{lat_labels}}} {}",
                h.count()
            );
        }
        for (name, value) in &self.counters {
            let _ = writeln!(
                out,
                "tensor_eig_counter_{}{{{labels}}} {value}",
                prom_name(name)
            );
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(
                out,
                "tensor_eig_gauge_{}{{{labels}}} {}",
                prom_name(name),
                prom_f64(*value)
            );
        }
        out
    }
}

/// Sanitize a metric-name fragment: Prometheus names admit only
/// `[a-zA-Z0-9_:]`, and ours should avoid `:` (reserved for recording
/// rules), so everything else becomes `_`.
fn prom_name(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Escape a label value per the exposition format (`\`, `"`, newline).
fn prom_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render a float the exposition format accepts (no `inf`/`NaN` leaks).
fn prom_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

impl Serialize for FaultStats {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("injected", Value::UInt(self.injected)),
            ("observed", Value::UInt(self.observed)),
            ("recovered", Value::UInt(self.recovered)),
            ("failed", Value::UInt(self.failed)),
            ("failed_tensors", Value::UInt(self.failed_tensors)),
            ("retries", Value::UInt(self.retries)),
            ("failovers", Value::UInt(self.failovers)),
            ("degraded", Value::Bool(self.degraded)),
        ])
    }
}

fn get_u64(value: &Value, key: &str) -> u64 {
    value.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn get_f64(value: &Value, key: &str) -> f64 {
    value.get(key).and_then(Value::as_f64).unwrap_or(0.0)
}

fn get_str(value: &Value, key: &str) -> String {
    value
        .get(key)
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_owned()
}

impl<'de> Deserialize<'de> for FaultStats {
    fn from_value(value: &'de Value) -> Result<Self, Error> {
        Ok(FaultStats {
            injected: get_u64(value, "injected"),
            observed: get_u64(value, "observed"),
            recovered: get_u64(value, "recovered"),
            failed: get_u64(value, "failed"),
            failed_tensors: get_u64(value, "failed_tensors"),
            retries: get_u64(value, "retries"),
            failovers: get_u64(value, "failovers"),
            degraded: matches!(value.get("degraded"), Some(Value::Bool(true))),
        })
    }
}

impl Serialize for KernelCacheStats {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("memo_hits", Value::UInt(self.memo_hits)),
            ("memo_misses", Value::UInt(self.memo_misses)),
            ("disk_hits", Value::UInt(self.disk_hits)),
            ("disk_misses", Value::UInt(self.disk_misses)),
            ("generated", Value::UInt(self.generated)),
            ("generate_seconds", Value::Float(self.generate_seconds)),
        ])
    }
}

impl<'de> Deserialize<'de> for KernelCacheStats {
    fn from_value(value: &'de Value) -> Result<Self, Error> {
        Ok(KernelCacheStats {
            memo_hits: get_u64(value, "memo_hits"),
            memo_misses: get_u64(value, "memo_misses"),
            disk_hits: get_u64(value, "disk_hits"),
            disk_misses: get_u64(value, "disk_misses"),
            generated: get_u64(value, "generated"),
            generate_seconds: get_f64(value, "generate_seconds"),
        })
    }
}

impl Serialize for RunReport {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("schema_version", Value::UInt(self.schema_version)),
            ("backend", Value::Str(self.backend.clone())),
            ("kernel", Value::Str(self.kernel.clone())),
            ("solver", Value::Str(self.solver.clone())),
            (
                "workload",
                Value::object(vec![
                    ("num_tensors", Value::UInt(self.workload.num_tensors)),
                    ("num_starts", Value::UInt(self.workload.num_starts)),
                    ("total_solves", Value::UInt(self.workload.total_solves)),
                    (
                        "converged_solves",
                        Value::UInt(self.workload.converged_solves),
                    ),
                    (
                        "total_iterations",
                        Value::UInt(self.workload.total_iterations),
                    ),
                ]),
            ),
            (
                "throughput",
                Value::object(vec![
                    ("seconds", Value::Float(self.throughput.seconds)),
                    ("useful_flops", Value::UInt(self.throughput.useful_flops)),
                    ("gflops", Value::Float(self.throughput.gflops)),
                    (
                        "tensors_per_second",
                        Value::Float(self.throughput.tensors_per_second),
                    ),
                ]),
            ),
            ("faults", self.faults.to_value()),
            (
                "latencies",
                Value::Map(
                    self.latencies
                        .iter()
                        .map(|l| (l.name.clone(), l.histogram.to_value()))
                        .collect(),
                ),
            ),
            (
                "devices",
                Value::Seq(
                    self.devices
                        .iter()
                        .map(|d| {
                            Value::object(vec![
                                ("device_index", Value::UInt(d.device_index)),
                                ("host_index", Value::UInt(d.host_index)),
                                ("device", Value::Str(d.device.clone())),
                                ("num_tensors", Value::UInt(d.num_tensors)),
                                ("occupancy", Value::Float(d.occupancy)),
                                ("gflops", Value::Float(d.gflops)),
                                ("seconds", Value::Float(d.seconds)),
                                ("transfer_seconds", Value::Float(d.transfer_seconds)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "hosts",
                Value::Seq(
                    self.hosts
                        .iter()
                        .map(|h| {
                            Value::object(vec![
                                ("host_index", Value::UInt(h.host_index)),
                                ("num_devices", Value::UInt(h.num_devices)),
                                ("num_tensors", Value::UInt(h.num_tensors)),
                                ("nic_down_bytes", Value::UInt(h.nic_down_bytes)),
                                ("nic_up_bytes", Value::UInt(h.nic_up_bytes)),
                                ("nic_seconds", Value::Float(h.nic_seconds)),
                                ("seconds", Value::Float(h.seconds)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "comm",
                Value::object(vec![
                    ("nic_bytes", Value::UInt(self.comm.nic_bytes)),
                    (
                        "lower_bound_bytes",
                        Value::UInt(self.comm.lower_bound_bytes),
                    ),
                    ("ratio", Value::Float(self.comm.ratio)),
                ]),
            ),
            (
                "counters",
                Value::Map(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Value::Map(
                    self.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::Float(*v)))
                        .collect(),
                ),
            ),
        ];
        // Reports from layers that never touch the kernel registry simply
        // omit the key, mirroring the pre-registry schema.
        if let Some(kc) = &self.kernel_cache {
            fields.push(("kernel_cache", kc.to_value()));
        }
        Value::object(fields)
    }
}

impl<'de> Deserialize<'de> for RunReport {
    fn from_value(value: &'de Value) -> Result<Self, Error> {
        let schema_version = value
            .get("schema_version")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::custom("missing schema_version"))?;
        if schema_version != RUN_REPORT_SCHEMA_VERSION {
            return Err(Error::custom(format!(
                "unsupported schema_version {schema_version} (current is \
                 {RUN_REPORT_SCHEMA_VERSION})"
            )));
        }
        let workload = value
            .get("workload")
            .ok_or_else(|| Error::custom("missing workload"))?;
        let throughput = value
            .get("throughput")
            .ok_or_else(|| Error::custom("missing throughput"))?;
        let faults = match value.get("faults") {
            Some(f) => FaultStats::from_value(f)?,
            None => FaultStats::default(),
        };
        let mut latencies = Vec::new();
        if let Some(Value::Map(pairs)) = value.get("latencies") {
            for (name, hv) in pairs {
                latencies.push(LatencyStat {
                    name: name.clone(),
                    histogram: Histogram::from_value(hv)?,
                });
            }
        }
        let mut devices = Vec::new();
        if let Some(seq) = value.get("devices").and_then(Value::as_seq) {
            for d in seq {
                devices.push(DeviceStats {
                    device_index: get_u64(d, "device_index"),
                    host_index: get_u64(d, "host_index"),
                    device: get_str(d, "device"),
                    num_tensors: get_u64(d, "num_tensors"),
                    occupancy: get_f64(d, "occupancy"),
                    gflops: get_f64(d, "gflops"),
                    seconds: get_f64(d, "seconds"),
                    transfer_seconds: get_f64(d, "transfer_seconds"),
                });
            }
        }
        let mut hosts = Vec::new();
        if let Some(seq) = value.get("hosts").and_then(Value::as_seq) {
            for h in seq {
                hosts.push(HostStats {
                    host_index: get_u64(h, "host_index"),
                    num_devices: get_u64(h, "num_devices"),
                    num_tensors: get_u64(h, "num_tensors"),
                    nic_down_bytes: get_u64(h, "nic_down_bytes"),
                    nic_up_bytes: get_u64(h, "nic_up_bytes"),
                    nic_seconds: get_f64(h, "nic_seconds"),
                    seconds: get_f64(h, "seconds"),
                });
            }
        }
        // Reports written before the cluster backend carry no "comm" key;
        // default to the all-zero record.
        let comm = match value.get("comm") {
            Some(c) => CommStats {
                nic_bytes: get_u64(c, "nic_bytes"),
                lower_bound_bytes: get_u64(c, "lower_bound_bytes"),
                ratio: get_f64(c, "ratio"),
            },
            None => CommStats::default(),
        };
        // Reports written before the kernel registry carry no
        // "kernel_cache" key; that parses as `None`, not an error.
        let kernel_cache = match value.get("kernel_cache") {
            Some(kc) => Some(KernelCacheStats::from_value(kc)?),
            None => None,
        };
        let mut counters = Vec::new();
        if let Some(Value::Map(pairs)) = value.get("counters") {
            for (name, v) in pairs {
                counters.push((name.clone(), v.as_u64().unwrap_or(0)));
            }
        }
        let mut gauges = Vec::new();
        if let Some(Value::Map(pairs)) = value.get("gauges") {
            for (name, v) in pairs {
                gauges.push((name.clone(), v.as_f64().unwrap_or(0.0)));
            }
        }
        Ok(RunReport {
            schema_version,
            backend: get_str(value, "backend"),
            kernel: get_str(value, "kernel"),
            solver: get_str(value, "solver"),
            workload: WorkloadStats {
                num_tensors: get_u64(workload, "num_tensors"),
                num_starts: get_u64(workload, "num_starts"),
                total_solves: get_u64(workload, "total_solves"),
                converged_solves: get_u64(workload, "converged_solves"),
                total_iterations: get_u64(workload, "total_iterations"),
            },
            throughput: ThroughputStats {
                seconds: get_f64(throughput, "seconds"),
                useful_flops: get_u64(throughput, "useful_flops"),
                gflops: get_f64(throughput, "gflops"),
                tensors_per_second: get_f64(throughput, "tensors_per_second"),
            },
            faults,
            latencies,
            devices,
            hosts,
            comm,
            kernel_cache,
            counters,
            gauges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut r = RunReport::new("gpusim:tesla-c2050", "unrolled");
        r.solver = "sshopm".into();
        r.workload = WorkloadStats {
            num_tensors: 8,
            num_starts: 16,
            total_solves: 128,
            converged_solves: 120,
            total_iterations: 2560,
        };
        r.throughput = ThroughputStats {
            seconds: 0.004,
            useful_flops: 4_000_000,
            gflops: 1.0,
            tensors_per_second: 2000.0,
        };
        let mut h = Histogram::new();
        for v in [1e-4, 2e-4, 3e-4, 5e-3] {
            h.observe(v);
        }
        r.push_latency("chunk", h);
        r.devices.push(DeviceStats {
            device_index: 0,
            host_index: 1,
            device: "Tesla C2050".into(),
            num_tensors: 8,
            occupancy: 0.67,
            gflops: 1.0,
            seconds: 0.004,
            transfer_seconds: 0.001,
        });
        r.hosts.push(HostStats {
            host_index: 1,
            num_devices: 2,
            num_tensors: 8,
            nic_down_bytes: 4096,
            nic_up_bytes: 1024,
            nic_seconds: 0.0005,
            seconds: 0.0045,
        });
        r.comm = CommStats {
            nic_bytes: 5120,
            lower_bound_bytes: 5000,
            ratio: 1.024,
        };
        r.kernel_cache = Some(KernelCacheStats {
            memo_hits: 3,
            memo_misses: 1,
            disk_hits: 1,
            disk_misses: 0,
            generated: 0,
            generate_seconds: 0.0,
        });
        r.counters.push(("batch.solves".into(), 128));
        r.gauges.push(("gpu.occupancy".into(), 0.67));
        r
    }

    #[test]
    fn headline_matches_cli_format() {
        let r = sample();
        let h = r.headline();
        assert_eq!(
            h,
            "backend gpusim:tesla-c2050 (unrolled kernel): 8 tensors x 16 starts, \
             2560 iterations, 4.000 ms, 1.00 GFLOP/s"
        );
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let back = RunReport::parse_json(&r.to_json_pretty()).expect("parse");
        assert_eq!(back, r);
    }

    #[test]
    fn reports_without_a_solver_field_still_parse() {
        // Baselines written before solver tagging carry no "solver" key;
        // they must keep parsing with an empty solver string.
        let mut v = sample().to_value();
        if let Value::Map(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "solver");
        }
        let back = RunReport::from_value(&v).expect("parse");
        assert_eq!(back.solver, "");
        assert_eq!(back.backend, "gpusim:tesla-c2050");
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut v = sample().to_value();
        if let Value::Map(pairs) = &mut v {
            pairs[0].1 = Value::UInt(999);
        }
        let err = RunReport::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("schema_version"), "{err}");
    }

    #[test]
    fn push_latency_merges_same_name() {
        let mut r = RunReport::new("cpu", "general");
        let mut a = Histogram::new();
        a.observe(1e-3);
        let mut b = Histogram::new();
        b.observe(2e-3);
        r.push_latency("chunk", a);
        r.push_latency("chunk", b);
        assert_eq!(r.latencies.len(), 1);
        assert_eq!(r.latency("chunk").map(Histogram::count), Some(2));
    }

    #[test]
    fn text_rendering_lists_latency_quantiles() {
        let text = sample().render_text();
        assert!(text.contains("backend gpusim:tesla-c2050"), "{text}");
        assert!(text.contains("chunk"), "{text}");
        assert!(text.contains("p50"), "{text}");
        assert!(text.contains("p99"), "{text}");
        assert!(text.contains("device 0 (Tesla C2050)"), "{text}");
        assert!(text.contains("host 1: 2 devices"), "{text}");
        assert!(
            text.contains("comm: 5120 NIC bytes vs 5000 lower bound"),
            "{text}"
        );
        // No faults happened, so no fault line.
        assert!(!text.contains("faults:"), "{text}");
    }

    #[test]
    fn reports_without_hosts_or_comm_still_parse() {
        // Reports written before the cluster backend carry neither key.
        let mut v = sample().to_value();
        if let Value::Map(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "hosts" && k != "comm");
        }
        let back = RunReport::from_value(&v).expect("parse");
        assert!(back.hosts.is_empty());
        assert!(back.comm.is_empty());
    }

    #[test]
    fn reports_without_kernel_cache_still_parse() {
        // Reports written before the kernel registry carry no such key.
        let mut v = sample().to_value();
        if let Value::Map(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "kernel_cache");
        }
        let back = RunReport::from_value(&v).expect("parse");
        assert!(back.kernel_cache.is_none());
        // And a `None` block serializes to an absent key, not a null.
        let v = back.to_value();
        assert!(v.get("kernel_cache").is_none());
    }

    #[test]
    fn kernel_cache_block_renders_and_round_trips() {
        let r = sample();
        let text = r.render_text();
        assert!(
            text.contains("kernel cache: 3 memo hits / 1 misses, 1 disk hits / 0 misses"),
            "{text}"
        );
        assert!(text.contains("100% artifact hit rate"), "{text}");
        let back = RunReport::parse_json(&r.to_json()).expect("parse");
        assert_eq!(back.kernel_cache, r.kernel_cache);
        let prom = r.to_prometheus();
        assert!(
            prom.contains("tensor_eig_kernel_cache_disk_hits_total"),
            "{prom}"
        );
        assert!(
            prom.contains("tensor_eig_kernel_cache_artifact_hit_rate"),
            "{prom}"
        );
    }

    #[test]
    fn fault_line_matches_legacy_format() {
        let f = FaultStats {
            injected: 3,
            observed: 3,
            recovered: 2,
            failed: 1,
            failed_tensors: 1,
            retries: 4,
            failovers: 1,
            degraded: true,
        };
        assert_eq!(
            f.summary_line(),
            "faults: 3 injected, 3 observed, 2 recovered, 1 failed (1 tensors lost), \
             4 retries, 1 failovers, degraded mode"
        );
        assert!(!f.is_empty());
        assert!(FaultStats::default().is_empty());
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let text = sample().to_prometheus();
        assert!(
            text.contains("# TYPE tensor_eig_run_seconds gauge"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE tensor_eig_latency_seconds histogram"),
            "{text}"
        );
        assert!(
            text.contains("le=\"+Inf\"}} 4") || text.contains("le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(text.contains("tensor_eig_latency_seconds_count"), "{text}");
        assert!(text.contains("latency=\"chunk\""), "{text}");
        // Counter names survive sanitization ('.' -> '_').
        assert!(text.contains("tensor_eig_counter_batch_solves"), "{text}");
        assert!(text.contains("tensor_eig_comm_ratio"), "{text}");
        assert!(
            text.contains("tensor_eig_host_nic_bytes_total") && text.contains("host_index=\"1\""),
            "{text}"
        );
    }
}
