//! Log-bucketed latency histograms with quantile estimates.
//!
//! One shared bucketing scheme backs every latency distribution in the
//! stack: the in-pipeline aggregates behind [`crate::Telemetry::observe`],
//! the [`crate::HistogramSnapshot`] export shape, and the per-chunk /
//! per-stream / per-device latency sets inside a [`crate::RunReport`].
//! Values are seconds; buckets are powers of two of *microseconds*
//! (bucket 0 is the sub-microsecond underflow bin, the last bucket absorbs
//! overflow), so one `[u64; 64]` array spans nanosecond spans to modeled
//! multi-hour makespans with a fixed ≤2× relative error per bucket.
//!
//! Quantiles are rank-based over the buckets: `quantile(q)` returns the
//! upper edge of the bucket holding the `⌈q·count⌉`-th smallest
//! observation, clamped into `[min, max]`. The estimate therefore lies in
//! the same bucket as the exact sorted-sample quantile — within one
//! bucket's relative error, a property the proptest suite pins down.

use serde::{Deserialize, Error, Serialize, Value};

/// Number of log2 buckets: bucket 0 holds sub-microsecond values, bucket
/// `i ≥ 1` holds `[2^(i-1), 2^i)` microseconds, and the last bucket also
/// absorbs anything larger.
pub const NUM_BUCKETS: usize = 64;

/// A mergeable log-bucketed histogram of nonnegative durations (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    /// `INFINITY` when empty.
    min: f64,
    /// `NEG_INFINITY` when empty.
    max: f64,
    buckets: [u64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; NUM_BUCKETS],
        }
    }
}

/// Bucket index for a duration in seconds (negative values clamp to 0).
pub fn bucket_index(seconds: f64) -> usize {
    let us = (seconds * 1e6).max(0.0);
    if us < 1.0 {
        0
    } else {
        (us.log2().floor() as usize + 1).min(NUM_BUCKETS - 1)
    }
}

/// Exclusive upper edge of bucket `i`, in seconds (`1µs` for bucket 0,
/// `2^i µs` beyond).
pub fn bucket_upper_edge(i: usize) -> f64 {
    if i == 0 {
        1e-6
    } else {
        2f64.powi(i.min(NUM_BUCKETS - 1) as i32) * 1e-6
    }
}

/// Rank-based quantile over a raw bucket array: the upper edge of the
/// bucket holding the `⌈q·count⌉`-th smallest observation, clamped into
/// `[min, max]`. Shared by [`Histogram`] and the snapshot export shape so
/// the two can never disagree. Returns 0 for an empty histogram.
pub fn quantile_from_buckets(buckets: &[u64], count: u64, min: f64, max: f64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * count as f64).ceil() as u64).max(1);
    let mut cumulative = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cumulative += c;
        if cumulative >= rank {
            return bucket_upper_edge(i).clamp(min, max);
        }
    }
    max
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Rebuild a histogram from exported parts (e.g. a
    /// [`crate::HistogramSnapshot`]); `min`/`max` follow the export
    /// convention of 0 when `count` is 0, and `buckets` shorter than
    /// [`NUM_BUCKETS`] are zero-padded.
    pub fn from_parts(count: u64, sum: f64, min: f64, max: f64, buckets: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        h.count = count;
        h.sum = sum;
        if count > 0 {
            h.min = min;
            h.max = max;
        }
        for (dst, &src) in h.buckets.iter_mut().zip(buckets.iter()) {
            *dst = src;
        }
        h
    }

    /// Record one duration (seconds; negatives clamp to 0).
    pub fn observe(&mut self, seconds: f64) {
        let v = seconds.max(0.0);
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Fold `other` into `self`; equivalent to having observed the union
    /// of both sample sets.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, seconds.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// Rank-based quantile estimate (see [`quantile_from_buckets`]).
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(&self.buckets, self.count, self.min, self.max, q)
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

impl Serialize for Histogram {
    fn to_value(&self) -> Value {
        // Sparse bucket encoding keeps reports and committed baselines
        // small: only nonzero buckets are listed, as [index, count] pairs.
        let sparse: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Value::Seq(vec![Value::UInt(i as u64), Value::UInt(c)]))
            .collect();
        Value::object(vec![
            ("count", Value::UInt(self.count)),
            ("sum", Value::Float(self.sum)),
            ("min", Value::Float(self.min())),
            ("max", Value::Float(self.max())),
            ("mean", Value::Float(self.mean())),
            ("p50", Value::Float(self.p50())),
            ("p90", Value::Float(self.p90())),
            ("p99", Value::Float(self.p99())),
            ("buckets", Value::Seq(sparse)),
        ])
    }
}

impl<'de> Deserialize<'de> for Histogram {
    fn from_value(value: &'de Value) -> Result<Self, Error> {
        let count = value
            .get("count")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::custom("histogram: missing count"))?;
        let sum = value.get("sum").and_then(Value::as_f64).unwrap_or(0.0);
        let mut h = Histogram {
            count,
            sum,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; NUM_BUCKETS],
        };
        if count > 0 {
            h.min = value.get("min").and_then(Value::as_f64).unwrap_or(0.0);
            h.max = value.get("max").and_then(Value::as_f64).unwrap_or(0.0);
        }
        let sparse = value
            .get("buckets")
            .and_then(Value::as_seq)
            .ok_or_else(|| Error::custom("histogram: missing buckets"))?;
        for pair in sparse {
            let entry = pair
                .as_seq()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| Error::custom("histogram: bucket entry is not [index, count]"))?;
            let i = entry[0]
                .as_u64()
                .ok_or_else(|| Error::custom("histogram: non-integer bucket index"))?
                as usize;
            let c = entry[1]
                .as_u64()
                .ok_or_else(|| Error::custom("histogram: non-integer bucket count"))?;
            if i >= NUM_BUCKETS {
                return Err(Error::custom(format!(
                    "histogram: bucket index {i} out of range (max {})",
                    NUM_BUCKETS - 1
                )));
            }
            h.buckets[i] += c;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_guarded() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
    }

    #[test]
    fn bucket_indices_are_log2_microseconds() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(0.5e-6), 0);
        assert_eq!(bucket_index(1.0e-6), 1);
        assert_eq!(bucket_index(1.9e-6), 1);
        assert_eq!(bucket_index(2.0e-6), 2);
        assert_eq!(bucket_index(1e9), 50);
        assert_eq!(bucket_index(1e20), NUM_BUCKETS - 1);
        // Edges bracket their buckets: value v lands in bucket b with
        // upper_edge(b) > v for in-range values.
        for v in [3e-6, 1e-3, 0.25, 7.0] {
            let b = bucket_index(v);
            assert!(bucket_upper_edge(b) > v, "v={v} b={b}");
            assert!(b == 0 || bucket_upper_edge(b - 1) <= v, "v={v} b={b}");
        }
    }

    #[test]
    fn stats_and_quantiles_track_observations() {
        let mut h = Histogram::new();
        for v in [1e-3, 2e-3, 3e-3, 10e-3] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 1e-3);
        assert_eq!(h.max(), 10e-3);
        assert!((h.mean() - 4e-3).abs() < 1e-15);
        // p50 = 2nd smallest sample (2ms): estimate within its bucket.
        let p50 = h.p50();
        assert!((2e-3..=2.0 * 2e-3).contains(&p50), "{p50}");
        // p99 = largest sample (10ms): estimate clamps to max.
        let p99 = h.p99();
        assert!((10e-3..=2.0 * 10e-3).contains(&p99), "{p99}");
    }

    #[test]
    fn negative_observations_clamp_to_zero() {
        let mut h = Histogram::new();
        h.observe(-5.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.buckets()[0], 1);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for (i, v) in [1e-6, 5e-4, 0.02, 3.0, 8e-5].iter().enumerate() {
            if i % 2 == 0 {
                a.observe(*v);
            } else {
                b.observe(*v);
            }
            both.observe(*v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn serialize_round_trips() {
        let mut h = Histogram::new();
        for v in [1e-4, 2e-4, 0.5, 12.0] {
            h.observe(v);
        }
        let json = h.to_value().to_json();
        let parsed = Value::parse_json(&json).expect("valid JSON");
        let back = Histogram::from_value(&parsed).expect("valid histogram");
        assert_eq!(back, h);
        // Empty histograms round-trip through the 0-sentinel min/max.
        let empty = Histogram::new();
        let back = Histogram::from_value(&empty.to_value()).expect("valid");
        assert_eq!(back, empty);
    }

    #[test]
    fn deserialize_rejects_garbage() {
        let v = Value::object(vec![("count", Value::Str("x".into()))]);
        assert!(Histogram::from_value(&v).is_err());
        let v = Value::object(vec![
            ("count", Value::UInt(1)),
            (
                "buckets",
                Value::Seq(vec![Value::Seq(vec![Value::UInt(99)])]),
            ),
        ]);
        assert!(Histogram::from_value(&v).is_err());
    }
}
