//! Exporters: human-readable summary and chrome://tracing JSON.

use crate::metrics::{State, TelemetrySnapshot};
use serde::Value;
use std::fmt::Write;

fn format_us(us: f64) -> String {
    if us < 1_000.0 {
        format!("{us:.1}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1_000.0)
    } else {
        format!("{:.3}s", us / 1_000_000.0)
    }
}

/// Render the snapshot as an aligned, human-readable report.
pub(crate) fn summary(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== telemetry summary (uptime {:.3}s) ==",
        snap.uptime_seconds
    );
    if !snap.spans.is_empty() {
        let _ = writeln!(out, "spans:");
        for s in &snap.spans {
            let _ = writeln!(
                out,
                "  {:<32} count {:>8}  total {:>10}  mean {:>10}  min {:>10}  max {:>10}",
                s.name,
                s.count,
                format_us(s.total_us),
                format_us(s.mean_us()),
                format_us(s.min_us),
                format_us(s.max_us),
            );
        }
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for c in &snap.counters {
            let _ = writeln!(out, "  {:<32} {:>14}", c.name, c.value);
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for g in &snap.gauges {
            let _ = writeln!(out, "  {:<32} {:>14.6}", g.name, g.value);
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(out, "histograms:");
        for h in &snap.histograms {
            let _ = writeln!(
                out,
                "  {:<32} count {:>8}  mean {:>12.6}  p50 {:>12.6}  p90 {:>12.6}  \
                 p99 {:>12.6}  min {:>12.6}  max {:>12.6}",
                h.name,
                h.count,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.min,
                h.max,
            );
        }
    }
    if snap.trace_dropped > 0 {
        let _ = writeln!(
            out,
            "trace: {} events retained, {} dropped past cap",
            snap.trace_events, snap.trace_dropped
        );
    }
    if !snap.events.is_empty() {
        let _ = writeln!(
            out,
            "events: {} structured event(s) recorded",
            snap.events.len()
        );
    }
    out
}

/// Render retained span occurrences as a chrome://tracing "trace events"
/// JSON array (complete events, phase `X`; timestamps in microseconds).
pub(crate) fn chrome_trace(state: &State) -> String {
    let events: Vec<Value> = state
        .trace
        .iter()
        .map(|ev| {
            Value::object(vec![
                ("name", Value::Str(ev.name.to_owned())),
                ("cat", Value::Str("tensor-eig".into())),
                ("ph", Value::Str("X".into())),
                ("ts", Value::Float(ev.start_us)),
                ("dur", Value::Float(ev.duration_us)),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(ev.thread as u64)),
            ])
        })
        .collect();
    Value::Seq(events).to_json()
}
