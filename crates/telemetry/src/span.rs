//! Span guards: RAII wall-clock timing.

use crate::Inner;
use std::sync::Arc;
use std::time::Instant;

/// RAII guard for a timed region; records the span when dropped.
///
/// Obtained from [`crate::Telemetry::span`]. On a disabled handle the
/// guard is empty: no clock is read at open or close.
#[must_use = "a span measures the region until the guard is dropped"]
pub struct SpanGuard {
    live: Option<(Arc<Inner>, &'static str, Instant)>,
}

impl SpanGuard {
    pub(crate) fn open(inner: Option<Arc<Inner>>, name: &'static str) -> SpanGuard {
        SpanGuard {
            live: inner.map(|inner| (inner, name, Instant::now())),
        }
    }

    /// Close the span now instead of at end of scope.
    pub fn close(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, name, started)) = self.live.take() {
            crate::Telemetry::record_span(&inner, name, started);
        }
    }
}
