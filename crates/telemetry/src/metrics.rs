//! Aggregation state and serializable snapshots.

use crate::histogram::{quantile_from_buckets, Histogram};
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::time::Duration;

/// Per-span aggregate: count and total/min/max duration in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SpanAgg {
    pub count: u64,
    pub total_us: f64,
    pub min_us: f64,
    pub max_us: f64,
}

/// One completed span occurrence retained for chrome-trace export.
#[derive(Debug, Clone)]
pub(crate) struct TraceEvent {
    pub name: &'static str,
    pub thread: usize,
    pub start_us: f64,
    pub duration_us: f64,
}

/// All mutable aggregation state behind the telemetry mutex.
#[derive(Default)]
pub(crate) struct State {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    spans: BTreeMap<&'static str, SpanAgg>,
    histograms: BTreeMap<&'static str, Histogram>,
    pub(crate) trace: Vec<TraceEvent>,
    pub(crate) trace_dropped: u64,
    custom: Vec<(&'static str, Value)>,
}

impl State {
    pub fn add_counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    pub fn add_span(&mut self, name: &'static str, duration_us: f64) {
        let agg = self.spans.entry(name).or_insert(SpanAgg {
            count: 0,
            total_us: 0.0,
            min_us: f64::INFINITY,
            max_us: f64::NEG_INFINITY,
        });
        agg.count += 1;
        agg.total_us += duration_us;
        agg.min_us = agg.min_us.min(duration_us);
        agg.max_us = agg.max_us.max(duration_us);
    }

    pub fn push_trace(
        &mut self,
        name: &'static str,
        thread: usize,
        start_us: f64,
        duration_us: f64,
        cap: usize,
    ) {
        if self.trace.len() < cap {
            self.trace.push(TraceEvent {
                name,
                thread,
                start_us,
                duration_us,
            });
        } else {
            self.trace_dropped += 1;
        }
    }

    pub fn push_custom(&mut self, name: &'static str, payload: Value) {
        self.custom.push((name, payload));
    }

    pub fn snapshot(&self, uptime: Duration) -> TelemetrySnapshot {
        TelemetrySnapshot {
            uptime_seconds: uptime.as_secs_f64(),
            counters: self
                .counters
                .iter()
                .map(|(&name, &value)| CounterSnapshot {
                    name: name.to_owned(),
                    value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&name, &value)| GaugeSnapshot {
                    name: name.to_owned(),
                    value,
                })
                .collect(),
            spans: self
                .spans
                .iter()
                .map(|(&name, agg)| SpanSnapshot {
                    name: name.to_owned(),
                    count: agg.count,
                    total_us: agg.total_us,
                    min_us: agg.min_us,
                    max_us: agg.max_us,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&name, h)| HistogramSnapshot {
                    name: name.to_owned(),
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min(),
                    max: h.max(),
                    buckets: h.buckets().to_vec(),
                })
                .collect(),
            events: self
                .custom
                .clone()
                .into_iter()
                .map(|(n, v)| (n.to_owned(), v))
                .collect(),
            trace_events: self.trace.len() as u64,
            trace_dropped: self.trace_dropped,
        }
    }
}

/// A counter's aggregated value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// A gauge's last value.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Gauge name.
    pub name: String,
    /// Last written value.
    pub value: f64,
}

/// A span's aggregate timing.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Number of completed occurrences.
    pub count: u64,
    /// Total time across occurrences, microseconds.
    pub total_us: f64,
    /// Shortest occurrence, microseconds.
    pub min_us: f64,
    /// Longest occurrence, microseconds.
    pub max_us: f64,
}

impl SpanSnapshot {
    /// Mean occurrence duration in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us / self.count as f64
        }
    }
}

/// A histogram's aggregate statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Power-of-two microsecond buckets.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Rank-based quantile estimate over the log2 buckets (see
    /// [`quantile_from_buckets`]); 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(&self.buckets, self.count, self.min, self.max, q)
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// The snapshot as a mergeable [`Histogram`] (e.g. to fold into a
    /// [`crate::RunReport`] latency set).
    pub fn to_histogram(&self) -> Histogram {
        Histogram::from_parts(self.count, self.sum, self.min, self.max, &self.buckets)
    }
}

/// Serializable snapshot of all aggregated telemetry.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Seconds since the pipeline was created.
    pub uptime_seconds: f64,
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All span aggregates, sorted by name.
    pub spans: Vec<SpanSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Custom structured events, in emission order.
    pub events: Vec<(String, Value)>,
    /// Number of retained trace events.
    pub trace_events: u64,
    /// Trace events dropped past the retention cap.
    pub trace_dropped: u64,
}

impl TelemetrySnapshot {
    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Value of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// A span aggregate by name.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

impl Serialize for TelemetrySnapshot {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("uptime_seconds", Value::Float(self.uptime_seconds)),
            (
                "counters",
                Value::Map(
                    self.counters
                        .iter()
                        .map(|c| (c.name.clone(), Value::UInt(c.value)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Value::Map(
                    self.gauges
                        .iter()
                        .map(|g| (g.name.clone(), Value::Float(g.value)))
                        .collect(),
                ),
            ),
            (
                "spans",
                Value::Seq(
                    self.spans
                        .iter()
                        .map(|s| {
                            Value::object(vec![
                                ("name", Value::Str(s.name.clone())),
                                ("count", Value::UInt(s.count)),
                                ("total_us", Value::Float(s.total_us)),
                                ("mean_us", Value::Float(s.mean_us())),
                                ("min_us", Value::Float(s.min_us)),
                                ("max_us", Value::Float(s.max_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "histograms",
                Value::Seq(
                    self.histograms
                        .iter()
                        .map(|h| {
                            Value::object(vec![
                                ("name", Value::Str(h.name.clone())),
                                ("count", Value::UInt(h.count)),
                                ("sum", Value::Float(h.sum)),
                                ("mean", Value::Float(h.mean())),
                                ("min", Value::Float(h.min)),
                                ("max", Value::Float(h.max)),
                                ("p50", Value::Float(h.p50())),
                                ("p90", Value::Float(h.p90())),
                                ("p99", Value::Float(h.p99())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "events",
                Value::Seq(
                    self.events
                        .iter()
                        .map(|(name, payload)| {
                            Value::object(vec![
                                ("name", Value::Str(name.clone())),
                                ("payload", payload.clone()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("trace_events", Value::UInt(self.trace_events)),
            ("trace_dropped", Value::UInt(self.trace_dropped)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_of(values: &[f64]) -> HistogramSnapshot {
        let mut state = State::default();
        for &v in values {
            state.observe("h", v);
        }
        let snap = state.snapshot(Duration::from_secs(1));
        snap.histogram("h").cloned().unwrap_or(HistogramSnapshot {
            name: "h".to_owned(),
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: Vec::new(),
        })
    }

    #[test]
    fn empty_snapshot_guards_mean_min_max() {
        let h = snap_of(&[]);
        assert_eq!(h.count, 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 0.0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p99(), 0.0);
    }

    #[test]
    fn snapshot_exposes_min_max_and_mean() {
        let h = snap_of(&[1e-3, 2e-3, 3e-3]);
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1e-3);
        assert_eq!(h.max, 3e-3);
        assert!((h.mean() - 2e-3).abs() < 1e-15);
    }

    #[test]
    fn snapshot_quantiles_match_shared_histogram() {
        let values = [1e-4, 2e-4, 8e-4, 5e-3, 5e-3, 0.04];
        let snap = snap_of(&values);
        let mut direct = Histogram::new();
        for v in values {
            direct.observe(v);
        }
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), direct.quantile(q), "q={q}");
        }
        // And the round-trip back into a Histogram is lossless.
        assert_eq!(snap.to_histogram(), direct);
    }

    #[test]
    fn snapshot_serialization_includes_quantiles() {
        let snap_val = {
            let mut state = State::default();
            state.observe("h", 2e-3);
            state.snapshot(Duration::from_secs(1)).to_value()
        };
        let hists = snap_val.get("histograms").and_then(Value::as_seq).unwrap();
        let h = &hists[0];
        for key in ["p50", "p90", "p99", "min", "max", "mean"] {
            assert!(h.get(key).and_then(Value::as_f64).is_some(), "{key}");
        }
    }
}
