//! Aggregation state and serializable snapshots.

use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::time::Duration;

/// Per-span aggregate: count and total/min/max duration in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SpanAgg {
    pub count: u64,
    pub total_us: f64,
    pub min_us: f64,
    pub max_us: f64,
}

/// Histogram aggregate: count/sum/min/max plus power-of-two microsecond
/// buckets (bucket `i` counts values in `[2^i, 2^{i+1})` µs when the
/// observed unit is seconds; for unit-free observations buckets are still
/// meaningful as relative magnitude bins).
#[derive(Debug, Clone)]
pub(crate) struct HistogramAgg {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub buckets: [u64; 32],
}

impl Default for HistogramAgg {
    fn default() -> Self {
        HistogramAgg {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; 32],
        }
    }
}

impl HistogramAgg {
    fn bucket_index(value: f64) -> usize {
        // Values are treated as seconds; bucket by log2 of microseconds.
        let us = (value * 1e6).max(0.0);
        if us < 1.0 {
            0
        } else {
            (us.log2().floor() as usize + 1).min(31)
        }
    }

    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }
}

/// One completed span occurrence retained for chrome-trace export.
#[derive(Debug, Clone)]
pub(crate) struct TraceEvent {
    pub name: &'static str,
    pub thread: usize,
    pub start_us: f64,
    pub duration_us: f64,
}

/// All mutable aggregation state behind the telemetry mutex.
#[derive(Default)]
pub(crate) struct State {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    spans: BTreeMap<&'static str, SpanAgg>,
    histograms: BTreeMap<&'static str, HistogramAgg>,
    pub(crate) trace: Vec<TraceEvent>,
    pub(crate) trace_dropped: u64,
    custom: Vec<(&'static str, Value)>,
}

impl State {
    pub fn add_counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    pub fn add_span(&mut self, name: &'static str, duration_us: f64) {
        let agg = self.spans.entry(name).or_insert(SpanAgg {
            count: 0,
            total_us: 0.0,
            min_us: f64::INFINITY,
            max_us: f64::NEG_INFINITY,
        });
        agg.count += 1;
        agg.total_us += duration_us;
        agg.min_us = agg.min_us.min(duration_us);
        agg.max_us = agg.max_us.max(duration_us);
    }

    pub fn push_trace(
        &mut self,
        name: &'static str,
        thread: usize,
        start_us: f64,
        duration_us: f64,
        cap: usize,
    ) {
        if self.trace.len() < cap {
            self.trace.push(TraceEvent {
                name,
                thread,
                start_us,
                duration_us,
            });
        } else {
            self.trace_dropped += 1;
        }
    }

    pub fn push_custom(&mut self, name: &'static str, payload: Value) {
        self.custom.push((name, payload));
    }

    pub fn snapshot(&self, uptime: Duration) -> TelemetrySnapshot {
        TelemetrySnapshot {
            uptime_seconds: uptime.as_secs_f64(),
            counters: self
                .counters
                .iter()
                .map(|(&name, &value)| CounterSnapshot {
                    name: name.to_owned(),
                    value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&name, &value)| GaugeSnapshot {
                    name: name.to_owned(),
                    value,
                })
                .collect(),
            spans: self
                .spans
                .iter()
                .map(|(&name, agg)| SpanSnapshot {
                    name: name.to_owned(),
                    count: agg.count,
                    total_us: agg.total_us,
                    min_us: agg.min_us,
                    max_us: agg.max_us,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&name, agg)| HistogramSnapshot {
                    name: name.to_owned(),
                    count: agg.count,
                    sum: agg.sum,
                    min: if agg.count == 0 { 0.0 } else { agg.min },
                    max: if agg.count == 0 { 0.0 } else { agg.max },
                    buckets: agg.buckets.to_vec(),
                })
                .collect(),
            events: self
                .custom
                .clone()
                .into_iter()
                .map(|(n, v)| (n.to_owned(), v))
                .collect(),
            trace_events: self.trace.len() as u64,
            trace_dropped: self.trace_dropped,
        }
    }
}

/// A counter's aggregated value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// A gauge's last value.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Gauge name.
    pub name: String,
    /// Last written value.
    pub value: f64,
}

/// A span's aggregate timing.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Number of completed occurrences.
    pub count: u64,
    /// Total time across occurrences, microseconds.
    pub total_us: f64,
    /// Shortest occurrence, microseconds.
    pub min_us: f64,
    /// Longest occurrence, microseconds.
    pub max_us: f64,
}

impl SpanSnapshot {
    /// Mean occurrence duration in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us / self.count as f64
        }
    }
}

/// A histogram's aggregate statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Power-of-two microsecond buckets.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Serializable snapshot of all aggregated telemetry.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Seconds since the pipeline was created.
    pub uptime_seconds: f64,
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All span aggregates, sorted by name.
    pub spans: Vec<SpanSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Custom structured events, in emission order.
    pub events: Vec<(String, Value)>,
    /// Number of retained trace events.
    pub trace_events: u64,
    /// Trace events dropped past the retention cap.
    pub trace_dropped: u64,
}

impl TelemetrySnapshot {
    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Value of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// A span aggregate by name.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

impl Serialize for TelemetrySnapshot {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("uptime_seconds", Value::Float(self.uptime_seconds)),
            (
                "counters",
                Value::Map(
                    self.counters
                        .iter()
                        .map(|c| (c.name.clone(), Value::UInt(c.value)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Value::Map(
                    self.gauges
                        .iter()
                        .map(|g| (g.name.clone(), Value::Float(g.value)))
                        .collect(),
                ),
            ),
            (
                "spans",
                Value::Seq(
                    self.spans
                        .iter()
                        .map(|s| {
                            Value::object(vec![
                                ("name", Value::Str(s.name.clone())),
                                ("count", Value::UInt(s.count)),
                                ("total_us", Value::Float(s.total_us)),
                                ("mean_us", Value::Float(s.mean_us())),
                                ("min_us", Value::Float(s.min_us)),
                                ("max_us", Value::Float(s.max_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "histograms",
                Value::Seq(
                    self.histograms
                        .iter()
                        .map(|h| {
                            Value::object(vec![
                                ("name", Value::Str(h.name.clone())),
                                ("count", Value::UInt(h.count)),
                                ("sum", Value::Float(h.sum)),
                                ("mean", Value::Float(h.mean())),
                                ("min", Value::Float(h.min)),
                                ("max", Value::Float(h.max)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "events",
                Value::Seq(
                    self.events
                        .iter()
                        .map(|(name, payload)| {
                            Value::object(vec![
                                ("name", Value::Str(name.clone())),
                                ("payload", payload.clone()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("trace_events", Value::UInt(self.trace_events)),
            ("trace_dropped", Value::UInt(self.trace_dropped)),
        ])
    }
}
