//! Event sinks: where instrumentation events stream as they happen.

use parking_lot::Mutex;
use serde::Value;
use std::io::Write;

/// One instrumentation event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span closed.
    SpanClose {
        /// Span name.
        name: &'static str,
        /// Dense per-thread index (see [`crate::thread_index`]).
        thread: usize,
        /// Start offset from pipeline creation, microseconds.
        start_us: f64,
        /// Duration, microseconds.
        duration_us: f64,
    },
    /// A counter increment.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Increment amount.
        delta: u64,
    },
    /// A gauge write.
    Gauge {
        /// Gauge name.
        name: &'static str,
        /// New value.
        value: f64,
    },
    /// A histogram observation.
    Observation {
        /// Histogram name.
        name: &'static str,
        /// Observed value.
        value: f64,
    },
    /// A structured custom event (e.g. a profile snapshot).
    Custom {
        /// Event name.
        name: &'static str,
        /// Structured payload.
        payload: Value,
    },
}

impl Event {
    /// The event as a JSON-ready [`Value`] (one object, `type` tagged).
    pub fn to_value(&self) -> Value {
        match self {
            Event::SpanClose {
                name,
                thread,
                start_us,
                duration_us,
            } => Value::object(vec![
                ("type", Value::Str("span".into())),
                ("name", Value::Str((*name).into())),
                ("thread", Value::UInt(*thread as u64)),
                ("start_us", Value::Float(*start_us)),
                ("duration_us", Value::Float(*duration_us)),
            ]),
            Event::Counter { name, delta } => Value::object(vec![
                ("type", Value::Str("counter".into())),
                ("name", Value::Str((*name).into())),
                ("delta", Value::UInt(*delta)),
            ]),
            Event::Gauge { name, value } => Value::object(vec![
                ("type", Value::Str("gauge".into())),
                ("name", Value::Str((*name).into())),
                ("value", Value::Float(*value)),
            ]),
            Event::Observation { name, value } => Value::object(vec![
                ("type", Value::Str("observation".into())),
                ("name", Value::Str((*name).into())),
                ("value", Value::Float(*value)),
            ]),
            Event::Custom { name, payload } => Value::object(vec![
                ("type", Value::Str("event".into())),
                ("name", Value::Str((*name).into())),
                ("payload", payload.clone()),
            ]),
        }
    }
}

/// Receives every event as it happens. Implementations must be cheap:
/// they run inside instrumented code paths (though never inside kernel
/// inner loops).
pub trait Sink: Send + Sync {
    /// Handle one event.
    fn record(&self, event: &Event);

    /// Flush buffered output, if any.
    fn flush(&self) {}
}

/// Forwarding through an `Arc` lets a caller keep a handle on a sink
/// (e.g. a [`MemorySink`] under test) after handing it to
/// [`crate::Telemetry::with_sink`].
impl<T: Sink> Sink for std::sync::Arc<T> {
    fn record(&self, event: &Event) {
        (**self).record(event);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

/// Discards every event (aggregation still happens upstream).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Retains every event in memory; for tests and programmatic inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of all recorded events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

/// Writes each event as one compact JSON object per line.
pub struct JsonLinesSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// Wrap any writer (file, stderr, buffer).
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonLinesSink {
            writer: Mutex::new(writer),
        }
    }

    /// Open (create/truncate) a file at `path` and write lines to it,
    /// buffered.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(file))))
    }
}

impl Sink for JsonLinesSink {
    fn record(&self, event: &Event) {
        let line = event.to_value().to_json();
        let mut writer = self.writer.lock();
        // Telemetry must never take down the workload: ignore IO errors.
        let _ = writeln!(writer, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn memory_sink_records_in_order() {
        let sink = MemorySink::new();
        sink.record(&Event::Counter {
            name: "a",
            delta: 1,
        });
        sink.record(&Event::Gauge {
            name: "b",
            value: 2.0,
        });
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            Event::Counter {
                name: "a",
                delta: 1
            }
        );
    }

    #[test]
    fn json_lines_sink_writes_parseable_lines() {
        #[derive(Clone, Default)]
        struct SharedBuf(Arc<parking_lot::Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedBuf::default();
        let sink = JsonLinesSink::new(Box::new(buf.clone()));
        sink.record(&Event::SpanClose {
            name: "solve",
            thread: 0,
            start_us: 1.0,
            duration_us: 2.0,
        });
        sink.record(&Event::Custom {
            name: "snap",
            payload: Value::object(vec![("x", Value::UInt(1))]),
        });
        sink.flush();
        let text = String::from_utf8(buf.0.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = Value::parse_json(line).unwrap();
            assert!(v.get("type").is_some());
        }
    }
}
