//! Property-based tests for the shared log-bucketed histogram: quantile
//! estimates bracket the exact sorted-sample quantiles within one
//! bucket's relative error, and merging equals observing the union.

use proptest::prelude::*;
use telemetry::histogram::{bucket_index, bucket_upper_edge, NUM_BUCKETS};
use telemetry::Histogram;

/// Strategy: a batch of plausible durations spanning sub-microsecond to
/// multi-second magnitudes (uniform over a wide range plus a tiny-value
/// tail so bucket 0 is exercised).
fn durations() -> impl Strategy<Value = Vec<f64>> {
    (
        proptest::collection::vec(0.0f64..3.0, 1..120),
        proptest::collection::vec(0.0f64..5e-6, 0..20),
    )
        .prop_map(|(mut big, tiny)| {
            big.extend(tiny);
            big
        })
}

/// Exact quantile under the histogram's rank convention: the
/// `max(1, ceil(q·n))`-th smallest sample.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    #[test]
    fn quantiles_bracket_exact_within_one_bucket(values in durations(), q in 0.01f64..1.0) {
        let mut h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = exact_quantile(&sorted, q);
        let estimate = h.quantile(q);
        // Lower bound: the estimate is a bucket upper edge (clamped to
        // max), so it can never undershoot the exact quantile.
        prop_assert!(
            estimate >= exact - 1e-15,
            "estimate {estimate} < exact {exact} (q={q})"
        );
        // Upper bound: one bucket's relative error (≤2×) for in-range
        // values; bucket 0 has absolute width 1µs instead.
        let bound = (2.0 * exact).max(1e-6);
        prop_assert!(
            estimate <= bound + 1e-15,
            "estimate {estimate} > bound {bound} (exact {exact}, q={q})"
        );
    }

    #[test]
    fn p50_p90_p99_are_monotone(values in durations()) {
        let mut h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        prop_assert!(h.p50() <= h.p90());
        prop_assert!(h.p90() <= h.p99());
        prop_assert!(h.p99() <= h.max() + 1e-15);
        prop_assert!(h.min() <= h.p50() + 1e-15);
    }

    #[test]
    fn merge_equals_observing_the_union(values in durations(), split_frac in 0.0f64..1.0) {
        let split = ((values.len() as f64) * split_frac) as usize;
        let (left, right) = values.split_at(split.min(values.len()));
        let mut a = Histogram::new();
        for &v in left {
            a.observe(v);
        }
        let mut b = Histogram::new();
        for &v in right {
            b.observe(v);
        }
        let mut union = Histogram::new();
        for &v in &values {
            union.observe(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), union.count());
        prop_assert_eq!(a.min(), union.min());
        prop_assert_eq!(a.max(), union.max());
        prop_assert_eq!(a.buckets(), union.buckets());
        // Sums may differ only by float summation order.
        prop_assert!((a.sum() - union.sum()).abs() <= 1e-12 * union.sum().max(1.0));
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(a.quantile(q), union.quantile(q));
        }
    }

    #[test]
    fn bucket_edges_bracket_their_values(v in 0.0f64..10.0) {
        let b = bucket_index(v);
        prop_assert!(b < NUM_BUCKETS);
        prop_assert!(bucket_upper_edge(b) > v || b == NUM_BUCKETS - 1);
        if b > 0 {
            prop_assert!(bucket_upper_edge(b - 1) <= v);
        }
    }

    #[test]
    fn serialization_round_trips(values in durations()) {
        use serde::{Deserialize, Serialize, Value};
        let mut h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let json = h.to_value().to_json();
        let parsed = Value::parse_json(&json).expect("valid JSON");
        let back = Histogram::from_value(&parsed).expect("valid histogram");
        prop_assert_eq!(back, h);
    }
}
