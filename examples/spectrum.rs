//! Explore the full real spectrum of random symmetric tensors.
//!
//! For order-m, dimension-n symmetric tensors Cartwright & Sturmfels bound
//! the number of (complex) eigenpairs by ((m-1)^n - 1)/(m-2). This example
//! sweeps random tensors, hunts real eigenpairs with dense multistart under
//! both shifts, and reports how many real pairs were found versus the bound
//! — including the adaptive-shift solver's iteration savings.
//!
//! Run with: `cargo run --release --example spectrum`

use rand::SeedableRng;
use tensor_eig::prelude::*;

/// Cartwright-Sturmfels bound on the number of eigenpairs.
fn cs_bound(m: usize, n: usize) -> usize {
    ((m - 1).pow(n as u32) - 1) / (m - 2)
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let starts = sshopm::starts::fibonacci_sphere::<f64>(256);
    let dedup = DedupConfig::default();

    println!(
        "{:>4} {:>4} {:>8} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "m", "n", "CS-bound", "real", "maxima", "minima", "iters-fixed", "iters-adapt"
    );

    for (m, n) in [(3usize, 3usize), (4, 3), (6, 3)] {
        for _trial in 0..3 {
            let a = SymTensor::<f64>::random(m, n, &mut rng);

            let mut pairs: Vec<sshopm::multistart::SpectrumEntry<f64>> = Vec::new();
            let mut fixed_iters = 0usize;
            for shift in [Shift::Convex, Shift::Concave] {
                let solver = SsHopm::new(shift).with_tolerance(1e-13);
                let spectrum = multistart(&solver, &a, &starts, &dedup, 1e-5);
                fixed_iters += spectrum
                    .entries
                    .iter()
                    .map(|e| e.pair.iterations * e.basin_count)
                    .sum::<usize>();
                // Deduplicate across the two shift runs (a pair can be
                // reachable from both).
                for e in spectrum.entries {
                    let duplicate = pairs.iter().any(|p| {
                        let d_minus: f64 = p
                            .pair
                            .x
                            .iter()
                            .zip(&e.pair.x)
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum::<f64>()
                            .sqrt();
                        let d_plus: f64 = p
                            .pair
                            .x
                            .iter()
                            .zip(&e.pair.x)
                            .map(|(a, b)| (a + b) * (a + b))
                            .sum::<f64>()
                            .sqrt();
                        let same = (p.pair.lambda - e.pair.lambda).abs() < 1e-5
                            && d_minus.min(d_plus) < 1e-3;
                        // For odd order, (lambda, x) and (-lambda, -x) are
                        // the same eigenpair class.
                        let mirror = m % 2 == 1
                            && (p.pair.lambda + e.pair.lambda).abs() < 1e-5
                            && d_plus < 1e-3;
                        same || mirror
                    });
                    if !duplicate {
                        pairs.push(e);
                    }
                }
            }

            // Adaptive shift on the same starts (maxima only) for the
            // iteration comparison.
            let adaptive = SsHopm::new(Shift::Adaptive).with_tolerance(1e-13);
            let sp_adapt = multistart(&adaptive, &a, &starts, &dedup, 1e-5);
            let adapt_iters: usize = sp_adapt
                .entries
                .iter()
                .map(|e| e.pair.iterations * e.basin_count)
                .sum();

            let maxima = pairs
                .iter()
                .filter(|e| e.stability == Stability::NegativeStable)
                .count();
            let minima = pairs
                .iter()
                .filter(|e| e.stability == Stability::PositiveStable)
                .count();

            println!(
                "{:>4} {:>4} {:>8} {:>10} {:>10} {:>10} {:>12} {:>12}",
                m,
                n,
                cs_bound(m, n),
                pairs.len(),
                maxima,
                minima,
                fixed_iters,
                adapt_iters
            );
            assert!(
                pairs.len() <= cs_bound(m, n),
                "found more real pairs than the CS bound allows"
            );
        }
    }

    println!("\nAll counts within the Cartwright-Sturmfels bound.");
}
