//! The paper's motivating application end to end: a synthetic DW-MRI
//! phantom → per-voxel tensor fits → batched SS-HOPM → fiber directions →
//! accuracy report.
//!
//! Generates the 32×32 (1024-voxel) phantom matching the structure of the
//! paper's Utah SCI test set (order-4, dimension-3 tensors; a mix of
//! single-fiber and two-fiber-crossing voxels), adds measurement noise,
//! recovers fiber directions with SS-HOPM, and scores them against ground
//! truth.
//!
//! Run with: `cargo run --release --example dwmri_fibers`

use dwmri::metrics::DatasetScore;
use rand::SeedableRng;
use tensor_eig::prelude::*;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    let config = PhantomConfig {
        // The physically-faithful noise model: Rician magnitude noise at
        // SNR0 = 100 and clinical-scale b-value.
        noise: dwmri::NoiseModel::Rician {
            sigma: 0.01,
            b: 1.5,
        },
        ..Default::default()
    };
    println!(
        "Generating {}x{} phantom (order-{} tensors, {} gradient directions, noise {})...",
        config.width,
        config.height,
        config.order,
        config.num_gradients,
        format_args!("{:?}", config.noise)
    );
    let phantom = Phantom::generate(config, &mut rng);
    println!(
        "  {} voxels: {} single-fiber, {} crossing\n",
        phantom.len(),
        phantom.count_with_fibers(1),
        phantom.count_with_fibers(2)
    );

    // Extract fibers from every voxel (parallel over voxels, like the
    // paper's batched GPU mapping) and score against ground truth.
    let extract_cfg = ExtractConfig {
        num_starts: 128, // the paper's choice
        ..Default::default()
    };
    use rayon::prelude::*;
    let scores: Vec<dwmri::VoxelScore> = phantom
        .voxels
        .par_iter()
        .map(|v| {
            let fibers = extract_fibers(&v.tensor, &extract_cfg);
            dwmri::score_voxel(&v.truth, &fibers, 10.0)
        })
        .collect();

    let agg = DatasetScore::aggregate(&scores);
    println!("Results over {} voxels:", agg.voxels);
    println!(
        "  fully-correct voxels : {} ({:.1}%)",
        agg.correct,
        100.0 * agg.accuracy()
    );
    println!("  mean angular error   : {:.2} deg", agg.mean_error_deg);
    println!("  missed fibers        : {}", agg.missed);
    println!("  spurious detections  : {}", agg.spurious);

    // Break down by voxel type.
    for k in [1usize, 2] {
        let subset: Vec<dwmri::VoxelScore> = phantom
            .voxels
            .iter()
            .zip(&scores)
            .filter(|(v, _)| v.truth.num_fibers() == k)
            .map(|(_, s)| s.clone())
            .collect();
        let sub = DatasetScore::aggregate(&subset);
        println!(
            "  {k}-fiber voxels      : {:>4} voxels, {:.1}% correct, {:.2} deg mean error",
            sub.voxels,
            100.0 * sub.accuracy(),
            sub.mean_error_deg
        );
    }

    assert!(
        agg.accuracy() > 0.9,
        "fiber recovery should succeed on a low-noise phantom"
    );

    // Downstream payoff: streamline tractography over the recovered field.
    use dwmri::tract::{trace, FiberField, TractConfig};
    let fibers: Vec<Vec<dwmri::FiberEstimate>> = phantom
        .voxels
        .par_iter()
        .map(|v| extract_fibers(&v.tensor, &extract_cfg))
        .collect();
    let field = FiberField::new(32, 32, fibers);
    // Seeds in the single-fiber region: tracking follows the primary tract
    // and passes straight *through* the crossing band by heading
    // continuity. (A seed inside the band would start along the band's
    // strongest axis — possibly the short crossing tract, which correctly
    // stops at the band edge.)
    let mut lengths = Vec::new();
    for seed_y in [4.0, 10.0, 28.0] {
        if let Some(s) = trace(&field, (2.0, seed_y), &TractConfig::default()) {
            lengths.push((seed_y, s.length(), s.stop_forward));
        }
    }
    println!("\nTractography (seeds at x=2):");
    for (y, len, stop) in &lengths {
        println!("  seed y={y:>4}: streamline length {len:.1} voxels (stopped: {stop:?})");
    }
    assert!(
        lengths.iter().all(|(_, len, _)| *len > 20.0),
        "primary tracts should span most of the 32-voxel grid"
    );

    println!("\nOK: fiber directions recovered from the tensor eigenproblem.");
}
