//! Quickstart: compute real eigenpairs of one small symmetric tensor.
//!
//! Builds an order-3, dimension-3 symmetric tensor (the shape of the
//! running example in the SS-HOPM literature), runs SS-HOPM from a spread
//! of starting vectors with both convex and concave shifts, and prints the
//! deduplicated real eigenpairs with their classifications.
//!
//! Run with: `cargo run --release --example quickstart`

use tensor_eig::prelude::*;

fn main() {
    // A symmetric 3x3x3 tensor given by its unique entries
    // (indices 0-based, nondecreasing).
    let mut a = SymTensor::<f64>::zeros(3, 3);
    let entries: [(&[usize; 3], f64); 10] = [
        (&[0, 0, 0], 0.4333),
        (&[0, 0, 1], 0.4278),
        (&[0, 0, 2], 0.4140),
        (&[0, 1, 1], 0.8154),
        (&[0, 1, 2], 0.0199),
        (&[0, 2, 2], 0.5598),
        (&[1, 1, 1], 0.0643),
        (&[1, 1, 2], 0.3815),
        (&[1, 2, 2], 0.8834),
        (&[2, 2, 2], 0.8144),
    ];
    for (idx, v) in entries {
        a.set(idx, v).expect("index in range");
    }

    println!(
        "Tensor: symmetric, order {}, dimension {}",
        a.order(),
        a.dim()
    );
    println!(
        "Packed storage: {} unique entries instead of {} ({}x saving)\n",
        a.num_unique(),
        a.num_total(),
        a.num_total() / a.num_unique() as u64
    );

    // Cover the sphere with deterministic starts and run with both shift
    // signs to find local maxima AND minima of A x^m on the sphere.
    let starts = sshopm::starts::fibonacci_sphere::<f64>(128);
    let dedup = DedupConfig::default();

    println!(
        "{:<10} {:>12} {:>24} {:>8}  class",
        "shift", "lambda", "eigenvector", "basin"
    );
    for shift in [Shift::Convex, Shift::Concave] {
        let solver = SsHopm::new(shift).with_tolerance(1e-14);
        let spectrum = multistart(&solver, &a, &starts, &dedup, 1e-6);
        for entry in &spectrum.entries {
            let x = &entry.pair.x;
            println!(
                "{:<10} {:>12.6} [{:>6.3} {:>6.3} {:>6.3}] {:>7.1}%  {:?}",
                format!("{shift:?}"),
                entry.pair.lambda,
                x[0],
                x[1],
                x[2],
                100.0 * entry.basin_count as f64 / spectrum.total_starts as f64,
                entry.stability,
            );
            // Every reported pair satisfies A x^{m-1} = lambda x.
            assert!(entry.pair.residual(&a) < 1e-6);
        }
    }

    // The same solve through the three kernel implementations agrees.
    let x0 = [1.0, 0.0, 0.0];
    let solver = SsHopm::new(Shift::Convex).with_tolerance(1e-14);
    let general = solver.solve(&a, &x0);
    let tables = PrecomputedTables::new(3, 3);
    let pre = solver.solve_with(&tables, &a, &x0);
    let unrolled = UnrolledKernels::for_shape(3, 3).expect("(3,3) generated");
    let unr = solver.solve_with(&unrolled, &a, &x0);
    println!(
        "\nkernel agreement: general {:.12} | precomputed {:.12} | unrolled {:.12}",
        general.lambda, pre.lambda, unr.lambda
    );
    assert!((general.lambda - pre.lambda).abs() < 1e-12);
    assert!((general.lambda - unr.lambda).abs() < 1e-12);
}
