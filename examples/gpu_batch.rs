//! Batched eigensolve on the simulated GPU: the paper's Section V setup.
//!
//! Launches the 1024-tensor / 128-start workload on the simulated Tesla
//! C2050 in both kernel variants, prints occupancy, estimated run time and
//! achieved GFLOP/s, and cross-checks the functional results against the
//! CPU batch solver.
//!
//! Run with: `cargo run --release --example gpu_batch`

use rand::SeedableRng;
use tensor_eig::prelude::*;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let tensors: Vec<SymTensor<f32>> = (0..1024)
        .map(|_| SymTensor::random(4, 3, &mut rng))
        .collect();
    let starts = sshopm::starts::random_uniform_starts::<f32, _>(3, 128, &mut rng);
    let policy = IterationPolicy::Fixed(20);
    let device = DeviceSpec::tesla_c2050();

    println!(
        "Device: {} — {} SMs x {} cores @ {:.2} GHz, peak {:.0} GFLOP/s (SP)\n",
        device.name,
        device.num_sms,
        device.cores_per_sm,
        device.clock_ghz,
        device.peak_sp_gflops()
    );
    println!(
        "Workload: T={} tensors (m=4, n=3), V={} starts, {} fixed iterations",
        tensors.len(),
        starts.len(),
        20
    );
    println!("Mapping: 1 block per tensor, 1 thread per start (Section V-B)\n");

    let mut reports = Vec::new();
    for variant in [GpuVariant::General, GpuVariant::Unrolled] {
        let (result, report) = launch_sshopm(&device, &tensors, &starts, policy, 0.0, variant);
        println!("--- {} kernel ---", variant.name());
        println!(
            "  resources : {} regs/thread, {} B shared/block",
            report.resources.registers_per_thread, report.resources.shared_mem_per_block
        );
        println!(
            "  occupancy : {} blocks/SM, {} warps/SM ({:.0}%), limited by {}",
            report.occupancy.blocks_per_sm,
            report.occupancy.warps_per_sm,
            report.occupancy.fraction * 100.0,
            report.occupancy.limiter
        );
        println!(
            "  est. time : {:.3} ms (compute {:.3} ms, memory {:.3} ms)",
            report.timing.seconds * 1e3,
            report.timing.compute_seconds * 1e3,
            report.timing.memory_seconds * 1e3
        );
        println!(
            "  achieved  : {:.1} GFLOP/s ({:.1}% of peak)\n",
            report.gflops,
            100.0 * report.gflops / device.peak_sp_gflops()
        );
        reports.push((variant, result, report));
    }

    let speedup = reports[0].2.timing.seconds / reports[1].2.timing.seconds;
    println!("Unrolled speedup over general on the GPU model: {speedup:.1}x");
    println!("(paper Table III(a): 18.7x)\n");

    // Cross-check: the simulated GPU computes the same eigenpairs as the
    // CPU batch solver using the same kernels.
    let k = UnrolledKernels::for_shape(4, 3).expect("(4,3) generated");
    let cpu = BatchSolver::new(SsHopm::new(Shift::Fixed(0.0)).with_policy(policy))
        .solve_parallel(&k, &tensors, &starts);
    let gpu = &reports[1].1;
    let mut worst = 0.0f32;
    for t in 0..tensors.len() {
        for v in 0..starts.len() {
            let d = (gpu.results[t][v].lambda - cpu.results[t][v].lambda).abs();
            worst = worst.max(d);
        }
    }
    println!(
        "GPU-vs-CPU max |lambda| difference over all {} solves: {worst:e}",
        1024 * 128
    );
    assert_eq!(worst, 0.0, "functional simulation must match CPU exactly");
    println!("OK: functional parity with the CPU reference.");
}
