//! Batched eigensolve on the simulated GPU: the paper's Section V setup.
//!
//! Launches the 1024-tensor / 128-start workload on the simulated Tesla
//! C2050 in both kernel variants through the unified `SolveBackend` layer,
//! prints occupancy, estimated run time and achieved GFLOP/s, and
//! cross-checks the functional results against the CPU backend running the
//! same kernels. A final pass re-runs the workload double-buffered through
//! the stream scheduler and prints the event-timeline summary — how much
//! of the PCIe traffic hid behind the kernels.
//!
//! Run with: `cargo run --release --example gpu_batch`

use rand::SeedableRng;
use tensor_eig::prelude::*;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let tensors = TensorBatch::<f32>::random(4, 3, 1024, &mut rng).expect("paper shape is valid");
    let starts = sshopm::starts::random_uniform_starts::<f32, _>(3, 128, &mut rng);
    let solver = SsHopm::new(Shift::Fixed(0.0)).with_policy(IterationPolicy::Fixed(20));
    let device = DeviceSpec::tesla_c2050();
    let telemetry = Telemetry::disabled();

    println!(
        "Device: {} — {} SMs x {} cores @ {:.2} GHz, peak {:.0} GFLOP/s (SP)\n",
        device.name,
        device.num_sms,
        device.cores_per_sm,
        device.clock_ghz,
        device.peak_sp_gflops()
    );
    println!(
        "Workload: T={} tensors (m=4, n=3), V={} starts, {} fixed iterations",
        tensors.len(),
        starts.len(),
        20
    );
    println!("Mapping: 1 block per tensor, 1 thread per start (Section V-B)\n");

    let mut reports = Vec::new();
    for strategy in [KernelStrategy::General, KernelStrategy::Unrolled] {
        let gpu = GpuSimBackend::new(device.clone(), strategy);
        let report = gpu
            .solve_batch(&tensors, &starts, &solver, &telemetry)
            .expect("gpu_batch example workload is well-formed");
        let snap = &report.profiles[0].snapshot;
        println!("--- {} kernel ---", report.kernel);
        println!(
            "  launch    : {} blocks x {} threads on {} SMs",
            snap.num_blocks, snap.threads_per_block, snap.active_sms
        );
        println!(
            "  occupancy : {} blocks/SM ({:.0}%), limited by {}",
            snap.blocks_per_sm,
            snap.occupancy * 100.0,
            snap.occupancy_limiter
        );
        println!(
            "  est. time : {:.3} ms (compute {:.3} ms, memory {:.3} ms)",
            snap.seconds * 1e3,
            snap.compute_seconds * 1e3,
            snap.memory_seconds * 1e3
        );
        println!(
            "  achieved  : {:.1} GFLOP/s ({:.1}% of peak)\n",
            report.gflops(),
            100.0 * report.gflops() / device.peak_sp_gflops()
        );
        reports.push(report);
    }

    let speedup = reports[0].seconds / reports[1].seconds;
    println!("Unrolled speedup over general on the GPU model: {speedup:.1}x");
    println!("(paper Table III(a): 18.7x)\n");

    // Cross-check: the simulated GPU computes the same eigenpairs as the
    // CPU backend using the same (unrolled) kernels.
    let cpu = CpuParallel::new(0, KernelStrategy::Unrolled)
        .solve_batch(&tensors, &starts, &solver, &telemetry)
        .expect("gpu_batch example workload is well-formed");
    let gpu = &reports[1];
    let mut worst = 0.0f32;
    for t in 0..tensors.len() {
        for v in 0..starts.len() {
            let d = (gpu.results[t][v].lambda - cpu.results[t][v].lambda).abs();
            worst = worst.max(d);
        }
    }
    println!(
        "GPU-vs-CPU max |lambda| difference over all {} solves: {worst:e}",
        1024 * 128
    );
    assert_eq!(worst, 0.0, "functional simulation must match CPU exactly");
    println!("OK: functional parity with the CPU reference.");
    println!("CPU summary: {}", cpu.summary());
    println!("GPU summary: {}", gpu.summary());

    // Same workload once more, chunked through two streams so uploads
    // double-buffer behind kernels (one copy engine + one compute engine,
    // like the real C2050).
    let piped = PipelinedBackend::homogeneous(
        device.clone(),
        1,
        TransferModel::pcie2(),
        KernelStrategy::Unrolled,
    )
    .expect("one device is valid")
    .with_streams(2)
    .expect("two streams is a valid stream count")
    .solve_batch(&tensors, &starts, &solver, &telemetry)
    .expect("gpu_batch example workload is well-formed");
    for (t, row) in piped.results.iter().enumerate() {
        for (v, pair) in row.iter().enumerate() {
            assert_eq!(
                pair.lambda.to_bits(),
                gpu.results[t][v].lambda.to_bits(),
                "pipelining must not change a single bit"
            );
        }
    }
    let timeline = piped
        .timeline
        .as_ref()
        .expect("pipelined backend reports a timeline");
    println!("\n--- double-buffered (2 streams) ---");
    println!("  {}", timeline.summary());
    println!("  bitwise-identical eigenpairs to the synchronous launch.");
}
