//! Beyond the unrollable shapes: eigensolves for tensors of general
//! dimension with the register-blocked kernels — the paper's future-work
//! direction ("attain the same performance … for tensors of general size
//! using register blocking and loop unrolling"), implemented in
//! `symtensor::blocked`.
//!
//! Sweeps the dimension n at fixed order m = 4, comparing the on-the-fly
//! general kernels against the blocked kernels (compile-time order,
//! runtime dimension) on SS-HOPM wall-clock, then solves one large-n
//! eigenproblem end to end with Newton polish.
//!
//! Run with: `cargo run --release --example general_dimensions`

use rand::SeedableRng;
use std::time::Instant;
use tensor_eig::prelude::*;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let policy = IterationPolicy::Fixed(50);
    let solver = SsHopm::new(Shift::Fixed(1.0)).with_policy(policy);

    println!("SS-HOPM wall-clock per 50 iterations, order m = 4, f64:");
    println!(
        "{:>4} {:>10} {:>12} {:>12} {:>9}",
        "n", "unique", "general", "blocked", "speedup"
    );
    for n in [3usize, 5, 8, 12, 16, 24] {
        let a = SymTensor::<f64>::random(4, n, &mut rng);
        let x0: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let blocked = BlockedKernels::for_shape(4, n).expect("order 4 is blocked");

        let reps = 20usize;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(solver.solve_with(&GeneralKernels, &a, &x0));
        }
        let t_general = t0.elapsed().as_secs_f64() / reps as f64;

        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(solver.solve_with(&blocked, &a, &x0));
        }
        let t_blocked = t0.elapsed().as_secs_f64() / reps as f64;

        println!(
            "{:>4} {:>10} {:>10.2}us {:>10.2}us {:>8.2}x",
            n,
            a.num_unique(),
            t_general * 1e6,
            t_blocked * 1e6,
            t_general / t_blocked
        );

        // Identical trajectories.
        let pg = solver.solve_with(&GeneralKernels, &a, &x0);
        let pb = solver.solve_with(&blocked, &a, &x0);
        assert!(
            (pg.lambda - pb.lambda).abs() < 1e-9 * (1.0 + pg.lambda.abs()),
            "kernels disagree at n={n}"
        );
    }

    // One full solve at n = 24: far beyond any fully-unrolled shape
    // (C(27, 4) = 17550 unique entries), polished to machine precision.
    let n = 24;
    let a = SymTensor::<f64>::random(4, n, &mut rng);
    let blocked = BlockedKernels::for_shape(4, n).unwrap();
    let x0: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).sin()).collect();
    // At n = 24 the global convexity bound (m-1)||A||_F is enormous and the
    // resulting linear rate crawls; the adaptive shift uses just enough
    // convexity at each iterate instead.
    let pair = SsHopm::new(Shift::Adaptive)
        .with_tolerance(1e-12)
        .with_max_iters(20_000)
        .solve_with(&blocked, &a, &x0);
    let polished = refine(&a, &pair, 4, 1e-14);
    println!(
        "\nn = {n}: lambda = {:.10}, {} SS-HOPM iterations, residual {:.2e} -> {:.2e} after {} Newton step(s)",
        polished.pair.lambda,
        pair.iterations,
        polished.residual_before,
        polished.residual_after,
        polished.steps
    );
    assert!(polished.residual_after < 1e-10);
    println!("OK: general-dimension eigensolve at machine precision.");
}
